#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "grid/region_grid.h"
#include "router/id_router.h"
#include "router/maze.h"
#include "router/occupancy.h"
#include "router/route_types.h"
#include "sino/nss.h"
#include "util/rng.h"

#include "golden_util.h"

namespace rlcr::router {
namespace {

grid::RegionGrid make_grid(std::int32_t cols = 12, std::int32_t rows = 12,
                           int cap = 8) {
  grid::RegionGridSpec s;
  s.cols = cols;
  s.rows = rows;
  s.region_w_um = 20.0;
  s.region_h_um = 25.0;
  s.h_capacity = cap;
  s.v_capacity = cap;
  return grid::RegionGrid(s);
}

std::vector<RouterNet> random_nets(const grid::RegionGrid& g, std::size_t count,
                                   std::uint64_t seed, std::int32_t spread = 4) {
  util::Xoshiro256 rng(seed);
  std::vector<RouterNet> nets(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
    const std::int32_t cx = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.cols())));
    const std::int32_t cy = static_cast<std::int32_t>(rng.below(
        static_cast<std::uint64_t>(g.rows())));
    const std::size_t degree = 2 + rng.below(3);
    for (std::size_t p = 0; p < degree; ++p) {
      geom::Point pt{
          std::clamp(cx + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.cols() - 1),
          std::clamp(cy + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.rows() - 1)};
      if (std::find(nets[i].pins.begin(), nets[i].pins.end(), pt) ==
          nets[i].pins.end()) {
        nets[i].pins.push_back(pt);
      }
    }
    if (nets[i].pins.size() < 2) {
      nets[i].pins.push_back(
          geom::Point{(cx + 1) % g.cols(), (cy + 1) % g.rows()});
    }
  }
  return nets;
}

TEST(RouteTypes, MakeEdgeCanonicalizes) {
  const GridEdge e = make_edge({3, 2}, {2, 2});
  EXPECT_EQ(e.a, (geom::Point{2, 2}));
  EXPECT_EQ(e.b, (geom::Point{3, 2}));
  EXPECT_EQ(e.dir(), grid::Dir::kHorizontal);
  EXPECT_EQ(make_edge({1, 1}, {1, 2}).dir(), grid::Dir::kVertical);
}

TEST(RouteTypes, WirelengthSumsSpans) {
  const grid::RegionGrid g = make_grid();
  NetRoute r;
  r.edges = {make_edge({0, 0}, {1, 0}), make_edge({1, 0}, {1, 1})};
  EXPECT_DOUBLE_EQ(r.wirelength_um(g), 20.0 + 25.0);
}

TEST(RouteTypes, ConnectsDetectsGaps) {
  NetRoute r;
  r.edges = {make_edge({0, 0}, {1, 0})};
  EXPECT_TRUE(r.connects({{0, 0}, {1, 0}}));
  EXPECT_FALSE(r.connects({{0, 0}, {2, 0}}));
  EXPECT_TRUE(r.connects({{5, 5}}));  // single pin is trivially connected
}

// -------------------------------------------------------------- ID router

TEST(IdRouter, StraightTwoPinNetIsMinimal) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const IdRouter router(g, nss);
  std::vector<RouterNet> nets(1);
  nets[0].id = 0;
  nets[0].pins = {{1, 3}, {7, 3}};
  const RoutingResult res = router.route(nets);
  EXPECT_EQ(res.routes[0].edges.size(), 6u);
  EXPECT_TRUE(res.routes[0].connects(nets[0].pins));
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 6 * 20.0);
}

TEST(IdRouter, SingleRegionNetGetsEmptyRoute) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const IdRouter router(g, nss);
  std::vector<RouterNet> nets(1);
  nets[0].pins = {{2, 2}};
  const RoutingResult res = router.route(nets);
  EXPECT_TRUE(res.routes[0].edges.empty());
}

TEST(IdRouter, AllNetsConnected) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const IdRouter router(g, nss);
  const auto nets = random_nets(g, 120, 5);
  const RoutingResult res = router.route(nets);
  ASSERT_EQ(res.routes.size(), nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_TRUE(res.routes[i].connects(nets[i].pins)) << "net " << i;
  }
}

TEST(IdRouter, RoutesAreTreesNotCyclic) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const IdRouter router(g, nss);
  const auto nets = random_nets(g, 80, 11);
  const RoutingResult res = router.route(nets);
  for (const NetRoute& r : res.routes) {
    // A tree over its touched vertices: |E| = |V| - 1.
    std::unordered_set<geom::Point> vertices;
    for (const GridEdge& e : r.edges) {
      vertices.insert(e.a);
      vertices.insert(e.b);
    }
    if (!r.edges.empty()) {
      EXPECT_EQ(r.edges.size(), vertices.size() - 1);
    }
  }
}

TEST(IdRouter, DetourGuardBoundsPathLength) {
  const grid::RegionGrid g = make_grid(16, 16);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.max_detour_factor = 1.3;
  opt.detour_slack = 1;
  const IdRouter router(g, nss, opt);
  const auto nets = random_nets(g, 150, 21, 6);
  const RoutingResult res = router.route(nets);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    if (res.routes[i].edges.empty()) continue;
    // Route wire length <= guard * HPWL-ish bound. Using the per-net tree:
    // every edge is on some source->pin path, and each path respects the
    // guard; the whole tree is bounded by the sum over sinks.
    double bound = 0.0;
    for (std::size_t p = 1; p < nets[i].pins.size(); ++p) {
      const auto dist = geom::manhattan(nets[i].pins[0], nets[i].pins[p]);
      bound += (opt.max_detour_factor * static_cast<double>(dist) +
                opt.detour_slack + 1) *
               std::max(g.region_w_um(), g.region_h_um());
    }
    EXPECT_LE(res.routes[i].wirelength_um(g), bound + 1e-6) << "net " << i;
  }
}

TEST(IdRouter, HugeNetsArePreRouted) {
  const grid::RegionGrid g = make_grid(24, 24);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.huge_net_bbox_threshold = 20;  // force the pre-route path
  const IdRouter router(g, nss, opt);
  std::vector<RouterNet> nets(1);
  nets[0].id = 0;
  nets[0].pins = {{0, 0}, {20, 15}, {3, 18}};
  const RoutingResult res = router.route(nets);
  EXPECT_EQ(res.stats.prerouted_nets, 1u);
  EXPECT_TRUE(res.routes[0].connects(nets[0].pins));
}

TEST(IdRouter, DeterministicAcrossRuns) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const IdRouter router(g, nss);
  const auto nets = random_nets(g, 60, 31);
  const RoutingResult a = router.route(nets);
  const RoutingResult b = router.route(nets);
  ASSERT_EQ(a.routes.size(), b.routes.size());
  for (std::size_t i = 0; i < a.routes.size(); ++i) {
    EXPECT_EQ(a.routes[i].edges.size(), b.routes[i].edges.size());
    for (std::size_t e = 0; e < a.routes[i].edges.size(); ++e) {
      EXPECT_EQ(a.routes[i].edges[e], b.routes[i].edges[e]);
    }
  }
}

TEST(IdRouter, ShieldReservationChangesDemandPicture) {
  // With reserve_shields the router sees higher utilization; the routing
  // still connects everything (behavioural smoke check of the Nss path).
  const grid::RegionGrid g = make_grid(10, 10, 4);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.reserve_shields = true;
  const IdRouter router(g, nss, opt);
  auto nets = random_nets(g, 100, 41);
  for (auto& n : nets) n.si = 0.6;  // strong shield pressure
  const RoutingResult res = router.route(nets);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_TRUE(res.routes[i].connects(nets[i].pins));
  }
}

// -------------------------------------------------------------- occupancy

TEST(Occupancy, CountsPresenceAndLengths) {
  const grid::RegionGrid g = make_grid();
  std::vector<NetRoute> routes(1);
  routes[0].net_id = 0;
  // L-shape through 3 regions: (0,0)-(1,0)-(1,1).
  routes[0].edges = {make_edge({0, 0}, {1, 0}), make_edge({1, 0}, {1, 1})};
  const Occupancy occ(g, routes);

  // Region (0,0): one H edge incident -> half a span.
  const auto& h00 = occ.segments(g.index({0, 0}), grid::Dir::kHorizontal);
  ASSERT_EQ(h00.size(), 1u);
  EXPECT_DOUBLE_EQ(h00[0].length_um, 10.0);
  // Region (1,0): one H edge and one V edge.
  EXPECT_EQ(occ.segments(g.index({1, 0}), grid::Dir::kHorizontal).size(), 1u);
  EXPECT_EQ(occ.segments(g.index({1, 0}), grid::Dir::kVertical).size(), 1u);
  // Net view: total length equals route wirelength.
  EXPECT_DOUBLE_EQ(occ.net_length_um(0), routes[0].wirelength_um(g));
}

TEST(Occupancy, ThroughCrossingGetsFullSpan) {
  const grid::RegionGrid g = make_grid();
  std::vector<NetRoute> routes(1);
  routes[0].edges = {make_edge({0, 0}, {1, 0}), make_edge({1, 0}, {2, 0})};
  const Occupancy occ(g, routes);
  const auto& mid = occ.segments(g.index({1, 0}), grid::Dir::kHorizontal);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_DOUBLE_EQ(mid[0].length_um, 20.0);  // both halves
}

TEST(Occupancy, FillSegmentsMatchesCounts) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const auto nets = random_nets(g, 60, 3);
  const RoutingResult res = IdRouter(g, nss).route(nets);
  const Occupancy occ(g, res.routes);
  grid::CongestionMap cmap(g);
  occ.fill_segments(cmap);
  for (std::size_t r = 0; r < g.region_count(); ++r) {
    for (grid::Dir d : grid::kBothDirs) {
      EXPECT_DOUBLE_EQ(cmap.segments(r, d),
                       static_cast<double>(occ.segments(r, d).size()));
    }
  }
}

TEST(Occupancy, NetLengthsSumToTotalWirelength) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const auto nets = random_nets(g, 50, 13);
  const RoutingResult res = IdRouter(g, nss).route(nets);
  const Occupancy occ(g, res.routes);
  double total = 0.0;
  for (std::size_t n = 0; n < nets.size(); ++n) total += occ.net_length_um(n);
  EXPECT_NEAR(total, res.total_wirelength_um, 1e-6);
}

// ------------------------------------------------------------ maze router

TEST(Maze, ConnectsAllNets) {
  const grid::RegionGrid g = make_grid();
  const MazeRouter maze(g);
  const auto nets = random_nets(g, 100, 17);
  const RoutingResult res = maze.route(nets);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_TRUE(res.routes[i].connects(nets[i].pins)) << "net " << i;
  }
}

TEST(Maze, TwoPinShortestWhenUncongested) {
  const grid::RegionGrid g = make_grid();
  const MazeRouter maze(g);
  std::vector<RouterNet> nets(1);
  nets[0].pins = {{0, 0}, {4, 3}};
  const RoutingResult res = maze.route(nets);
  EXPECT_EQ(res.routes[0].edges.size(), 7u);  // Manhattan distance
}

// ---------------------------------------------------- golden regression
//
// Values captured from the pre-incremental (seed) router implementation on
// fixed generator seeds. They pin exact routes (an FNV-1a hash over every
// net's sorted edge list), wire length, presence overflow, and the deletion
// outcome counts, proving the incremental engine (indexed heap, lazy
// density caches, bounded BFS, certificates) is behavior-preserving.
// The internal `reinserts` counter is deliberately NOT pinned: frozen nets
// now bulk-lock without per-pop revalidation, which changes how often heap
// keys are re-touched but not any routing decision.

std::size_t total_edges(const RoutingResult& res) {
  std::size_t n = 0;
  for (const NetRoute& r : res.routes) n += r.edges.size();
  return n;
}

TEST(IdRouterGolden, Grid12Seed5) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const RoutingResult res = IdRouter(g, nss).route(random_nets(g, 120, 5));
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 21865.0);
  EXPECT_EQ(total_edges(res), 972u);
  EXPECT_EQ(route_hash(res), 4419766033887167485ULL);
  EXPECT_DOUBLE_EQ(total_overflow(g, res), 30.0);
  EXPECT_EQ(res.stats.edges_deleted, 1229u);
  EXPECT_EQ(res.stats.edges_locked, 2633u);
}

TEST(IdRouterGolden, Grid12Seed31) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const RoutingResult res = IdRouter(g, nss).route(random_nets(g, 60, 31));
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 11605.0);
  EXPECT_EQ(total_edges(res), 514u);
  EXPECT_EQ(route_hash(res), 17639182734577684655ULL);
  EXPECT_DOUBLE_EQ(total_overflow(g, res), 0.0);
}

TEST(IdRouterGolden, Grid16Seed21) {
  const grid::RegionGrid g = make_grid(16, 16);
  const sino::NssModel nss;
  const RoutingResult res = IdRouter(g, nss).route(random_nets(g, 150, 21, 6));
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 42050.0);
  EXPECT_EQ(total_edges(res), 1872u);
  EXPECT_EQ(route_hash(res), 13807695867672252962ULL);
  EXPECT_DOUBLE_EQ(total_overflow(g, res), 125.0);
  EXPECT_EQ(res.stats.edges_deleted, 2697u);
  EXPECT_EQ(res.stats.edges_locked, 6973u);
}

TEST(IdRouterGolden, Grid10HighSensitivity) {
  const grid::RegionGrid g = make_grid(10, 10, 4);
  const sino::NssModel nss;
  auto nets = random_nets(g, 100, 41);
  for (auto& n : nets) n.si = 0.6;
  const RoutingResult res = IdRouter(g, nss).route(nets);
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 16550.0);
  EXPECT_EQ(route_hash(res), 10488068979805551661ULL);
  EXPECT_DOUBLE_EQ(total_overflow(g, res), 408.0);
}

TEST(IdRouterGolden, Grid32Seed7) {
  const grid::RegionGrid g = make_grid(32, 32, 12);
  const sino::NssModel nss;
  const RoutingResult res = IdRouter(g, nss).route(random_nets(g, 300, 7, 5));
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 75220.0);
  EXPECT_EQ(total_edges(res), 3346u);
  EXPECT_EQ(route_hash(res), 12328737626875344377ULL);
  EXPECT_EQ(res.stats.edges_deleted, 5271u);
  EXPECT_EQ(res.stats.edges_locked, 11392u);
}

TEST(IdRouterGolden, PreRoutedHugeNet) {
  const grid::RegionGrid g = make_grid(24, 24);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.huge_net_bbox_threshold = 20;
  std::vector<RouterNet> nets(1);
  nets[0].id = 0;
  nets[0].pins = {{0, 0}, {20, 15}, {3, 18}};
  const RoutingResult res = IdRouter(g, nss, opt).route(nets);
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 850.0);
  EXPECT_EQ(total_edges(res), 38u);
  EXPECT_EQ(route_hash(res), 13553872594035981539ULL);
}

// Z-shape pre-route option: same monotone wire length as the default L
// shape, different corridor split. Golden pinned at introduction.
TEST(IdRouterGolden, PreRoutedHugeNetZShape) {
  const grid::RegionGrid g = make_grid(24, 24);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.huge_net_bbox_threshold = 20;
  opt.preroute_shape = PrerouteShape::kZ;
  std::vector<RouterNet> nets(1);
  nets[0].id = 0;
  nets[0].pins = {{0, 0}, {20, 15}, {3, 18}};
  const RoutingResult res = IdRouter(g, nss, opt).route(nets);
  EXPECT_EQ(res.stats.prerouted_nets, 1u);
  EXPECT_TRUE(res.routes[0].connects(nets[0].pins));
  // Monotone like the L shape: identical total wire length...
  EXPECT_DOUBLE_EQ(res.total_wirelength_um, 850.0);
  // ...but a different corridor split (pinned Z golden).
  EXPECT_EQ(route_hash(res), 838763700482254819ULL);
}

TEST(IdRouter, ZShapeSplitsCorridorDemand) {
  // A single huge two-pin net: the L shape crosses one elbow, the Z two.
  const grid::RegionGrid g = make_grid(24, 24);
  const sino::NssModel nss;
  IdRouterOptions opt;
  opt.huge_net_bbox_threshold = 10;
  std::vector<RouterNet> nets(1);
  nets[0].id = 0;
  nets[0].pins = {{2, 2}, {18, 14}};

  const RoutingResult l_res = IdRouter(g, nss, opt).route(nets);
  opt.preroute_shape = PrerouteShape::kZ;
  const RoutingResult z_res = IdRouter(g, nss, opt).route(nets);

  EXPECT_TRUE(l_res.routes[0].connects(nets[0].pins));
  EXPECT_TRUE(z_res.routes[0].connects(nets[0].pins));
  EXPECT_DOUBLE_EQ(l_res.total_wirelength_um, z_res.total_wirelength_um);
  EXPECT_EQ(l_res.routes[0].edges.size(), z_res.routes[0].edges.size());
  EXPECT_NE(route_hash(l_res), route_hash(z_res));
}

// Dijkstra mode reproduces the seed maze router bit for bit.
TEST(MazeGolden, DijkstraModeMatchesSeed) {
  MazeOptions opt;
  opt.use_astar = false;
  {
    const grid::RegionGrid g = make_grid();
    const RoutingResult res = MazeRouter(g, opt).route(random_nets(g, 100, 17));
    EXPECT_DOUBLE_EQ(res.total_wirelength_um, 15795.0);
    EXPECT_EQ(total_edges(res), 702u);
    EXPECT_EQ(route_hash(res), 6889147554860165043ULL);
    EXPECT_DOUBLE_EQ(total_overflow(g, res), 2.0);
  }
  {
    const grid::RegionGrid g = make_grid(8, 8, 1);
    const RoutingResult res = MazeRouter(g, opt).route(random_nets(g, 40, 23));
    EXPECT_DOUBLE_EQ(res.total_wirelength_um, 6415.0);
    EXPECT_EQ(total_edges(res), 287u);
    EXPECT_EQ(route_hash(res), 227774984786367575ULL);
  }
  {
    const grid::RegionGrid g = make_grid(32, 32, 12);
    const RoutingResult res = MazeRouter(g, opt).route(random_nets(g, 200, 9, 5));
    EXPECT_DOUBLE_EQ(res.total_wirelength_um, 41860.0);
    EXPECT_EQ(total_edges(res), 1855u);
    EXPECT_EQ(route_hash(res), 16457129758403932149ULL);
  }
}

// A* (the default) keeps path costs but may break equal-cost ties
// differently; these goldens were captured at introduction and pin the
// default-mode behavior against future regressions.
TEST(MazeGolden, AStarDefaultMode) {
  {
    const grid::RegionGrid g = make_grid();
    const RoutingResult res = MazeRouter(g).route(random_nets(g, 100, 17));
    EXPECT_DOUBLE_EQ(res.total_wirelength_um, 15795.0);
    EXPECT_EQ(route_hash(res), 6889147554860165043ULL);
  }
  {
    const grid::RegionGrid g = make_grid(8, 8, 1);
    const RoutingResult res = MazeRouter(g).route(random_nets(g, 40, 23));
    EXPECT_DOUBLE_EQ(res.total_wirelength_um, 6460.0);
    EXPECT_EQ(total_edges(res), 289u);
    EXPECT_EQ(route_hash(res), 14270321430572745393ULL);
  }
  {
    const grid::RegionGrid g = make_grid(32, 32, 12);
    const RoutingResult res = MazeRouter(g).route(random_nets(g, 200, 9, 5));
    EXPECT_DOUBLE_EQ(res.total_wirelength_um, 41860.0);
    EXPECT_EQ(route_hash(res), 16457129758403932149ULL);
  }
}

// Where the workload is uncongested, A* and Dijkstra must agree on cost
// exactly even when tie shapes differ.
TEST(MazeGolden, AStarPreservesPathCostsWhenUncongested) {
  const grid::RegionGrid g = make_grid(20, 20, 16);
  const auto nets = random_nets(g, 80, 77, 5);
  MazeOptions dij;
  dij.use_astar = false;
  const RoutingResult a = MazeRouter(g).route(nets);
  const RoutingResult b = MazeRouter(g, dij).route(nets);
  EXPECT_DOUBLE_EQ(a.total_wirelength_um, b.total_wirelength_um);
  for (std::size_t i = 0; i < nets.size(); ++i) {
    EXPECT_TRUE(a.routes[i].connects(nets[i].pins)) << "net " << i;
  }
}

TEST(MazeGolden, OptionsStillRouteEverything) {
  const grid::RegionGrid g = make_grid(16, 16, 2);
  const auto nets = random_nets(g, 120, 99, 6);
  for (const bool astar : {false, true}) {
    MazeOptions opt;
    opt.use_astar = astar;
    const RoutingResult res = MazeRouter(g, opt).route(nets);
    for (std::size_t i = 0; i < nets.size(); ++i) {
      EXPECT_TRUE(res.routes[i].connects(nets[i].pins))
          << (astar ? "A*" : "dijkstra") << " net " << i;
    }
  }
}

TEST(Maze, OrderDependenceExists) {
  // Routing the same nets in reverse order can change someone's route —
  // the order dependence the paper avoids by choosing ID.
  const grid::RegionGrid g = make_grid(8, 8, 1);  // tiny capacity
  const MazeRouter maze(g);
  auto nets = random_nets(g, 40, 23);
  const RoutingResult fwd = maze.route(nets);
  std::reverse(nets.begin(), nets.end());
  const RoutingResult rev = maze.route(nets);
  std::reverse(nets.begin(), nets.end());
  // Compare total wirelength: not guaranteed different, but with capacity 1
  // and 40 nets collisions are overwhelming; allow equality but check the
  // mechanism ran.
  EXPECT_GT(fwd.total_wirelength_um, 0.0);
  EXPECT_GT(rev.total_wirelength_um, 0.0);
}

TEST(IdRouter, TiledAndDenseStorageBitIdentical) {
  // The per-region stores (RegionStats, density caches, congestion maps)
  // never change arithmetic with the storage mode — same routes, same
  // stats, same wirelength, bit for bit.
  const grid::RegionGrid g = make_grid(24, 24, 8);
  const auto nets = random_nets(g, 160, 77, 6);
  const sino::NssModel nss;
  const IdRouter router(g, nss, {});

  const grid::RegionStorage before = grid::default_region_storage();
  grid::set_default_region_storage(grid::RegionStorage::kTiled);
  const RoutingResult tiled = router.route(nets);
  grid::set_default_region_storage(grid::RegionStorage::kDense);
  const RoutingResult dense = router.route(nets);
  grid::set_default_region_storage(before);

  EXPECT_EQ(route_hash(tiled), route_hash(dense));
  EXPECT_EQ(tiled.total_wirelength_um, dense.total_wirelength_um);
  EXPECT_EQ(tiled.stats.edges_deleted, dense.stats.edges_deleted);
  EXPECT_EQ(tiled.stats.edges_locked, dense.stats.edges_locked);
  EXPECT_EQ(tiled.stats.reinserts, dense.stats.reinserts);
}

}  // namespace
}  // namespace rlcr::router
