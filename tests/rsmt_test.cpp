#include <gtest/gtest.h>

#include <vector>

#include "rsmt/rmst.h"
#include "rsmt/steiner.h"
#include "util/rng.h"

namespace rlcr::rsmt {
namespace {

using geom::Point;

TEST(Tree, LengthAndConnectivity) {
  Tree t;
  t.nodes = {{0, 0}, {3, 0}, {3, 4}};
  t.edges = {{0, 1}, {1, 2}};
  t.pin_count = 3;
  EXPECT_EQ(t.length(), 7);
  EXPECT_TRUE(t.connected());
  EXPECT_TRUE(t.is_tree());
  t.edges.pop_back();
  EXPECT_FALSE(t.connected());
  EXPECT_FALSE(t.is_tree());
}

TEST(Rmst, TrivialCases) {
  EXPECT_EQ(rmst_length(std::vector<Point>{}), 0);
  EXPECT_EQ(rmst_length(std::vector<Point>{{5, 5}}), 0);
  EXPECT_EQ(rmst_length(std::vector<Point>{{0, 0}, {2, 3}}), 5);
}

TEST(Rmst, CollinearPoints) {
  const std::vector<Point> pins{{0, 0}, {10, 0}, {4, 0}, {7, 0}};
  EXPECT_EQ(rmst_length(pins), 10);
}

TEST(Rmst, DuplicatesAreFree) {
  const std::vector<Point> pins{{1, 1}, {1, 1}, {4, 1}};
  EXPECT_EQ(rmst_length(pins), 3);
}

TEST(Rmst, SquareUsesThreeSides) {
  const std::vector<Point> pins{{0, 0}, {0, 2}, {2, 0}, {2, 2}};
  EXPECT_EQ(rmst_length(pins), 6);
  const Tree t = rmst(pins);
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.edges.size(), 3u);
}

TEST(Steiner, CrossNetGainsFromSteinerPoint) {
  // Plus-shape: RMST needs 4 arms = cost 8 via centre-less detours (RMST 8);
  // with the centre Steiner point the tree is exactly 8... use asymmetric
  // "T" instead where the gain is strict:
  const std::vector<Point> pins{{0, 0}, {4, 0}, {2, 3}};
  const std::int64_t mst = rmst_length(pins);
  const std::int64_t steiner = rsmt_length(pins);
  EXPECT_EQ(mst, 9);      // 4 + 5 (diagonal leg via L)
  EXPECT_EQ(steiner, 7);  // meet at (2, 0)
}

TEST(Steiner, NeverWorseThanRmst) {
  util::Xoshiro256 rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<Point> pins;
    const int n = 3 + static_cast<int>(rng.below(8));
    for (int i = 0; i < n; ++i) {
      pins.push_back(Point{static_cast<std::int32_t>(rng.below(20)),
                           static_cast<std::int32_t>(rng.below(20))});
    }
    EXPECT_LE(rsmt_length(pins), rmst_length(pins));
  }
}

TEST(Steiner, SteinerRatioBound) {
  // RSMT >= RMST * 2/3 (Hwang); so RMST <= 1.5 * our heuristic length.
  util::Xoshiro256 rng(7);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Point> pins;
    for (int i = 0; i < 6; ++i) {
      pins.push_back(Point{static_cast<std::int32_t>(rng.below(30)),
                           static_cast<std::int32_t>(rng.below(30))});
    }
    const auto heuristic = rsmt_length(pins);
    const auto mst = rmst_length(pins);
    EXPECT_LE(mst, (heuristic * 3 + 1) / 2 + 1);
  }
}

TEST(Steiner, ResultIsAlwaysATreeOverPins) {
  util::Xoshiro256 rng(11);
  for (int iter = 0; iter < 40; ++iter) {
    std::vector<Point> pins;
    const int n = 2 + static_cast<int>(rng.below(10));
    for (int i = 0; i < n; ++i) {
      pins.push_back(Point{static_cast<std::int32_t>(rng.below(16)),
                           static_cast<std::int32_t>(rng.below(16))});
    }
    const Tree t = rsmt(pins);
    EXPECT_TRUE(t.connected()) << "iter " << iter;
    EXPECT_EQ(t.edges.size() + 1, t.nodes.size());
    // Pins are preserved in order at the front.
    ASSERT_GE(t.nodes.size(), pins.size());
    for (std::size_t i = 0; i < pins.size(); ++i) EXPECT_EQ(t.nodes[i], pins[i]);
  }
}

TEST(Steiner, LargeNetsFallBackToRmst) {
  SteinerOptions opts;
  opts.max_pins_exact = 4;
  std::vector<Point> pins;
  for (int i = 0; i < 8; ++i) pins.push_back(Point{i, i * i % 7});
  const Tree t = rsmt(pins, opts);
  EXPECT_EQ(t.nodes.size(), pins.size());  // no Steiner points added
  EXPECT_TRUE(t.is_tree());
}

TEST(Steiner, NoDanglingSteinerLeaves) {
  util::Xoshiro256 rng(23);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<Point> pins;
    for (int i = 0; i < 7; ++i) {
      pins.push_back(Point{static_cast<std::int32_t>(rng.below(12)),
                           static_cast<std::int32_t>(rng.below(12))});
    }
    const Tree t = rsmt(pins);
    std::vector<int> degree(t.nodes.size(), 0);
    for (const auto& [a, b] : t.edges) {
      ++degree[static_cast<std::size_t>(a)];
      ++degree[static_cast<std::size_t>(b)];
    }
    for (std::size_t v = t.pin_count; v < t.nodes.size(); ++v) {
      EXPECT_GE(degree[v], 2) << "dangling Steiner node in iter " << iter;
    }
  }
}

class SteinerDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SteinerDegreeSweep, ValidTreesAtEveryDegree) {
  const int degree = GetParam();
  util::Xoshiro256 rng(static_cast<std::uint64_t>(degree) * 1009);
  std::vector<Point> pins;
  for (int i = 0; i < degree; ++i) {
    pins.push_back(Point{static_cast<std::int32_t>(rng.below(40)),
                         static_cast<std::int32_t>(rng.below(40))});
  }
  const Tree t = rsmt(pins);
  EXPECT_TRUE(t.connected());
  EXPECT_LE(t.length(), rmst_length(pins));
}

INSTANTIATE_TEST_SUITE_P(Degrees, SteinerDegreeSweep,
                         ::testing::Values(2, 3, 4, 5, 8, 12, 16, 24, 40));

}  // namespace
}  // namespace rlcr::rsmt
