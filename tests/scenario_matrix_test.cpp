// The scenario-matrix driver (src/scenario/matrix.h) and the ISPD'98
// wiring of ExperimentRunner: matrix completeness, per-cell differential
// checks and compute-avoided accounting, campaign determinism, and an
// ISPD'98-class Tables 1-3 smoke at scale 0.05 with one golden-pinned
// cell per table.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/metrics.h"
#include "scenario/matrix.h"

namespace rlcr::scenario {
namespace {

bool real_circuits_present() {
  const char* dir = std::getenv("RLCR_ISPD98_DIR");
  return dir != nullptr && *dir != '\0';
}

// ---------------------------------------------------------- matrix cells

// Every (class, kind) cell runs, avoids work, and passes its internal
// differential check — the same predicates tools/check_scenarios.py
// gates CI on.
TEST(ScenarioMatrix, CellsAvoidComputeAndPassDifferentialChecks) {
  MatrixOptions o;
  o.scale = 0.02;
  o.circuits = {0};
  const std::vector<ScenarioCell> cells = ScenarioMatrix(o).run();
  ASSERT_EQ(cells.size(), 4u);  // one per kind, circuit-major

  std::map<std::string, const ScenarioCell*> by_kind;
  for (const ScenarioCell& c : cells) by_kind[kind_name(c.kind)] = &c;
  ASSERT_EQ(by_kind.size(), 4u);

  for (const ScenarioCell& c : cells) {
    EXPECT_EQ(c.circuit, "ibm01");
    EXPECT_GT(c.runs, 1u) << kind_name(c.kind);
    EXPECT_GT(c.compute_avoided, 0u) << kind_name(c.kind);
    EXPECT_EQ(c.fingerprint_match, 1u) << kind_name(c.kind);
    EXPECT_GT(c.total_nets, 0u);
    EXPECT_NE(c.fingerprint, 0u);
  }

  // Campaign shapes: 4 bound rungs; 3 corners x 3 flows; initial run plus
  // 2 chain steps; initial run plus 1 ECO.
  EXPECT_EQ(by_kind["bound_sweep"]->runs, 4u);
  EXPECT_EQ(by_kind["tech_sweep"]->runs, 9u);
  EXPECT_EQ(by_kind["delta_chain"]->runs, 3u);
  EXPECT_EQ(by_kind["eco_slice"]->runs, 2u);

  // A bound sweep routes once and reuses Phase I on the other 3 rungs.
  EXPECT_GE(by_kind["bound_sweep"]->compute_avoided, 3u);
  // Each corner shares one routing artifact between ID+NO and iSINO.
  EXPECT_GE(by_kind["tech_sweep"]->compute_avoided, 3u);
}

// Two full matrix runs produce identical cell fingerprints — campaigns
// are deterministic end to end (the delta corpora regenerate from their
// seeds, the solves from theirs).
TEST(ScenarioMatrix, MatrixIsDeterministic) {
  MatrixOptions o;
  o.scale = 0.02;
  o.circuits = {0};
  o.kinds = {ScenarioKind::kBoundSweep, ScenarioKind::kDeltaChain};
  const auto first = ScenarioMatrix(o).run();
  const auto second = ScenarioMatrix(o).run();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].fingerprint, second[i].fingerprint)
        << kind_name(first[i].kind);
    EXPECT_EQ(first[i].runs, second[i].runs);
  }
}

// ------------------------------------------- ISPD'98 tables (satellite)

// ExperimentRunner's ISPD'98 path at scale 0.05: the three flows run at
// class sizes through the shared-session harness, the three table
// renderers consume the rows, and one cell per table is golden-pinned
// (synthetic stand-ins only — a genuine-circuit directory changes the
// instances, so the goldens cover the hermetic configuration CI runs).
TEST(ScenarioMatrix, Ispd98TablesSmokeGolden) {
  if (real_circuits_present()) {
    GTEST_SKIP() << "RLCR_ISPD98_DIR set; goldens pin the synthetic classes";
  }
  gsino::ExperimentOptions eo;
  eo.ispd98 = true;
  eo.scale = 0.05;
  eo.circuits = {0};
  eo.rates = {0.5};
  const std::vector<gsino::CircuitRun> runs = gsino::ExperimentRunner(eo).run();
  ASSERT_EQ(runs.size(), 1u);
  const gsino::CircuitRun& run = runs[0];

  EXPECT_EQ(run.circuit, "ibm01");
  EXPECT_EQ(run.total_nets, 705u);
  ASSERT_TRUE(run.has_isino);
  ASSERT_TRUE(run.has_gsino);

  // Table 1 cell: ID+NO crosstalk-violating nets at rate 0.5.
  EXPECT_EQ(run.idno.violating, 1u);
  // Table 2 cell: iSINO shield area (violations solved per region).
  EXPECT_EQ(run.isino.violating, 0u);
  EXPECT_EQ(run.isino.total_shields, 2557.0);
  // Table 3 cell: GSINO shield area (global budgeting, same outcome
  // quality with routing-stage awareness).
  EXPECT_EQ(run.gsino.violating, 0u);
  EXPECT_EQ(run.gsino.unfixable, 0u);
  EXPECT_EQ(run.gsino.total_shields, 2576.0);

  // The renderers accept ISPD'98 rows unchanged.
  EXPECT_FALSE(gsino::render_table1(runs).to_string().empty());
  EXPECT_FALSE(gsino::render_table2(runs).to_string().empty());
  EXPECT_FALSE(gsino::render_table3(runs).to_string().empty());
}

}  // namespace
}  // namespace rlcr::scenario
