// The what-if service (src/service): wire-protocol round-trip for every
// PDU type, malformed-frame rejection (truncation, corruption, version
// mismatch, oversized payloads), query key semantics, and the daemon
// end-to-end over a real Unix-domain socket — Hello gating, admission
// control, cancellation, request coalescing (two identical submits, one
// compute), and bit-identity of served results against a direct
// in-process FlowSession run. The concurrent-client stress runs under the
// TSan CI job.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/problem.h"
#include "core/session.h"
#include "router/route_types.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace rlcr::service {
namespace {

namespace fs = std::filesystem;

std::string test_socket_path(const char* tag) {
  return (fs::temp_directory_path() /
          ("rlcr_service_test_" + std::to_string(::getpid()) + "_" + tag +
           ".sock"))
      .string();
}

WhatIfQuery tiny_query(std::uint64_t seed = 7) {
  WhatIfQuery q;
  q.source = QuerySource::kTiny;
  q.tiny_nets = 150;
  q.seed = seed;
  q.rate = 0.5;
  q.flow = 2;  // gsino
  return q;
}

template <typename Pdu>
Pdu roundtrip(const Pdu& in) {
  const std::vector<std::uint8_t> bytes = encode(in);
  std::size_t consumed = 0;
  Frame frame;
  EXPECT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kFrame);
  EXPECT_EQ(consumed, bytes.size());
  const std::optional<Pdu> out = decode<Pdu>(frame);
  EXPECT_TRUE(out.has_value());
  return out.value_or(Pdu{});
}

// ------------------------------------------------- PDU round-trip, all 11

TEST(ServiceProtocol, HelloRoundTrip) {
  Hello in;
  in.protocol_version = kProtocolVersion;
  in.client_name = "unit";
  const Hello out = roundtrip(in);
  EXPECT_EQ(out.protocol_version, in.protocol_version);
  EXPECT_EQ(out.client_name, in.client_name);
}

TEST(ServiceProtocol, HelloAckRoundTrip) {
  HelloAck in;
  in.client_id = 42;
  in.server_name = "rlcr-whatif";
  const HelloAck out = roundtrip(in);
  EXPECT_EQ(out.client_id, 42u);
  EXPECT_EQ(out.server_name, in.server_name);
}

TEST(ServiceProtocol, SubmitRoundTripCarriesEveryQueryField) {
  Submit in;
  in.query.source = QuerySource::kIspd98;
  in.query.circuit = "ibm03";
  in.query.scale = 0.125;
  in.query.tiny_nets = 321;
  in.query.rate = 0.45;
  in.query.bound_v = 0.18;
  in.query.seed = 99;
  in.query.flow = 1;
  in.query.has_bound = true;
  in.query.scenario_bound_v = 0.2;
  in.query.has_margin = true;
  in.query.scenario_margin = 0.07;
  in.query.has_anneal = true;
  in.query.scenario_anneal = true;
  in.query.quality = 2;  // steiner::TreeProfile::kBest
  const Submit out = roundtrip(in);
  EXPECT_EQ(out.query.source, in.query.source);
  EXPECT_EQ(out.query.circuit, in.query.circuit);
  EXPECT_EQ(out.query.scale, in.query.scale);
  EXPECT_EQ(out.query.tiny_nets, in.query.tiny_nets);
  EXPECT_EQ(out.query.rate, in.query.rate);
  EXPECT_EQ(out.query.bound_v, in.query.bound_v);
  EXPECT_EQ(out.query.seed, in.query.seed);
  EXPECT_EQ(out.query.flow, in.query.flow);
  EXPECT_EQ(out.query.has_bound, true);
  EXPECT_EQ(out.query.scenario_bound_v, in.query.scenario_bound_v);
  EXPECT_EQ(out.query.has_margin, true);
  EXPECT_EQ(out.query.scenario_margin, in.query.scenario_margin);
  EXPECT_EQ(out.query.has_anneal, true);
  EXPECT_EQ(out.query.scenario_anneal, true);
  EXPECT_EQ(out.query.quality, 2);
  EXPECT_EQ(query_coalesce_key(out.query), query_coalesce_key(in.query));
}

// Protocol v2 compatibility: the version bump that added the quality tier
// makes v1 frames kBad at the 12-byte header — a v1 client is refused
// before any payload parsing, never silently mis-decoded.
TEST(ServiceProtocol, Version1FramesAreRejectedAtTheHeader) {
  ASSERT_EQ(kProtocolVersion, 2u);
  std::vector<std::uint8_t> bytes = encode(Submit{});
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof v1);  // version follows magic
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kBad);
}

TEST(ServiceProtocol, OutOfRangeQualityFailsDecode) {
  util::BinaryWriter w;
  WhatIfQuery q = tiny_query();
  q.quality = 1;
  q.encode(w);
  std::vector<std::uint8_t> payload = w.take();
  payload.back() = 3;  // quality is the final payload byte; 3 > kBest
  const std::vector<std::uint8_t> bytes =
      encode_frame(PduType::kSubmit, std::move(payload));
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kFrame);
  EXPECT_FALSE(decode<Submit>(frame).has_value());
}

TEST(ServiceProtocol, QualityIsInCoalesceKeyNotSessionKey) {
  WhatIfQuery a = tiny_query();
  WhatIfQuery b = a;
  b.quality = 2;
  EXPECT_EQ(query_session_key(a), query_session_key(b));
  EXPECT_NE(query_coalesce_key(a), query_coalesce_key(b));
}

TEST(ServiceProtocol, SubmitAckRoundTrip) {
  SubmitAck in;
  in.ticket = 7;
  in.reject = RejectReason::kInflightCap;
  in.coalesced = 1;
  const SubmitAck out = roundtrip(in);
  EXPECT_EQ(out.ticket, 7u);
  EXPECT_EQ(out.reject, RejectReason::kInflightCap);
  EXPECT_EQ(out.coalesced, 1);
}

TEST(ServiceProtocol, PollRoundTrip) {
  Poll in;
  in.ticket = 12;
  in.wait_ms = 1500;
  const Poll out = roundtrip(in);
  EXPECT_EQ(out.ticket, 12u);
  EXPECT_EQ(out.wait_ms, 1500u);
}

TEST(ServiceProtocol, ResultRoundTripWithSummary) {
  Result in;
  in.ticket = 3;
  in.state = JobState::kDone;
  in.summary.flow = 2;
  in.summary.bound_v = 0.15;
  in.summary.route_hash = 0xdeadbeefcafef00dULL;
  in.summary.state_hash = 0x0123456789abcdefULL;
  in.summary.violating = 4;
  in.summary.unfixable = 1;
  in.summary.total_wirelength_um = 123456.5;
  in.summary.avg_wirelength_um = 321.25;
  in.summary.total_shields = 77.0;
  in.summary.route_s = 1.5;
  in.summary.sino_s = 0.25;
  in.summary.refine_s = 0.125;
  in.summary.compute_s = 2.0;
  in.summary.warm = 1;
  const Result out = roundtrip(in);
  EXPECT_EQ(out.state, JobState::kDone);
  EXPECT_EQ(out.summary.route_hash, in.summary.route_hash);
  EXPECT_EQ(out.summary.state_hash, in.summary.state_hash);
  EXPECT_EQ(out.summary.violating, in.summary.violating);
  EXPECT_EQ(out.summary.total_wirelength_um, in.summary.total_wirelength_um);
  EXPECT_EQ(out.summary.warm, 1);
}

TEST(ServiceProtocol, ResultRoundTripFailedCarriesError) {
  Result in;
  in.ticket = 9;
  in.state = JobState::kFailed;
  in.error = "unknown circuit 'ibm99'";
  const Result out = roundtrip(in);
  EXPECT_EQ(out.state, JobState::kFailed);
  EXPECT_EQ(out.error, in.error);
}

TEST(ServiceProtocol, CancelRoundTrip) {
  Cancel in;
  in.ticket = 5;
  EXPECT_EQ(roundtrip(in).ticket, 5u);
}

TEST(ServiceProtocol, CancelAckRoundTrip) {
  CancelAck in;
  in.ticket = 5;
  in.cancelled = 1;
  const CancelAck out = roundtrip(in);
  EXPECT_EQ(out.ticket, 5u);
  EXPECT_EQ(out.cancelled, 1);
}

TEST(ServiceProtocol, StatsAndReplyRoundTrip) {
  roundtrip(Stats{});
  StatsReply in;
  in.metrics.push_back({"service.submits", 0, 12.0});
  in.metrics.push_back({"service.queue_depth", 1, 3.0});
  const StatsReply out = roundtrip(in);
  ASSERT_EQ(out.metrics.size(), 2u);
  EXPECT_EQ(out.metrics[0].name, "service.submits");
  EXPECT_EQ(out.metrics[0].kind, 0);
  EXPECT_EQ(out.metrics[0].value, 12.0);
  EXPECT_EQ(out.metrics[1].name, "service.queue_depth");
  EXPECT_EQ(out.metrics[1].kind, 1);
}

TEST(ServiceProtocol, ErrorRoundTrip) {
  Error in;
  in.code = ErrorCode::kNeedHello;
  in.message = "expected Hello";
  const Error out = roundtrip(in);
  EXPECT_EQ(out.code, ErrorCode::kNeedHello);
  EXPECT_EQ(out.message, in.message);
}

// ------------------------------------------------------ rejection paths

TEST(ServiceProtocol, TruncatedFrameNeedsMore) {
  const std::vector<std::uint8_t> bytes = encode(Cancel{});
  Frame frame;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_EQ(try_parse(bytes.data(), n, &consumed, &frame),
              ParseStatus::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(ServiceProtocol, CorruptionAnywhereIsRejected) {
  Poll poll;
  poll.ticket = 77;
  poll.wait_ms = 5;
  const std::vector<std::uint8_t> good = encode(poll);
  Frame frame;
  std::size_t consumed = 0;
  for (std::size_t i = 0; i < good.size(); ++i) {
    std::vector<std::uint8_t> bad = good;
    bad[i] ^= 0x5a;
    const ParseStatus st = try_parse(bad.data(), bad.size(), &consumed, &frame);
    // Header corruption -> kBad (magic/version/type) or kNeedMore (the
    // size field grew); payload or checksum corruption -> the FNV-1a
    // trailer mismatches -> kBad. No single-byte flip may ever deliver.
    EXPECT_NE(st, ParseStatus::kFrame) << "corrupt byte " << i;
  }
}

TEST(ServiceProtocol, VersionMismatchIsRejected) {
  std::vector<std::uint8_t> bytes = encode(Cancel{});
  bytes[8] ^= 0xff;  // the u32 version field follows the 8-byte magic
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kBad);
}

TEST(ServiceProtocol, BadMagicRejectedOnFirstBytes) {
  std::vector<std::uint8_t> bytes = encode(Cancel{});
  bytes[0] = 'X';
  Frame frame;
  std::size_t consumed = 0;
  // One wrong byte suffices — no need to buffer a whole frame of garbage.
  EXPECT_EQ(try_parse(bytes.data(), 1, &consumed, &frame), ParseStatus::kBad);
}

TEST(ServiceProtocol, OversizedPayloadRejected) {
  std::vector<std::uint8_t> bytes = encode(Cancel{});
  // Overwrite the u64 payload-size field (offset 16) with cap + 1.
  const std::uint64_t huge = kMaxPayloadBytes + 1;
  std::memcpy(bytes.data() + 16, &huge, sizeof huge);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kBad);
}

TEST(ServiceProtocol, WrongTypeDecodeFails) {
  const std::vector<std::uint8_t> bytes = encode(Cancel{});
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kFrame);
  EXPECT_FALSE(decode<Poll>(frame).has_value());
  EXPECT_FALSE(decode<Hello>(frame).has_value());
  EXPECT_TRUE(decode<Cancel>(frame).has_value());
}

TEST(ServiceProtocol, TrailingPayloadBytesRejected) {
  // A well-framed payload with junk after the PDU must not decode: the
  // at_end() check catches length-confusion attacks.
  util::BinaryWriter w;
  Cancel{}.encode_payload(w);
  std::vector<std::uint8_t> payload = w.take();
  payload.push_back(0xAB);
  const std::vector<std::uint8_t> bytes =
      encode_frame(PduType::kCancel, std::move(payload));
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(try_parse(bytes.data(), bytes.size(), &consumed, &frame),
            ParseStatus::kFrame);
  EXPECT_FALSE(decode<Cancel>(frame).has_value());
}

// ------------------------------------------------------------ query keys

TEST(ServiceProtocol, SessionKeyIgnoresFlowAndScenario) {
  WhatIfQuery a = tiny_query();
  WhatIfQuery b = a;
  b.flow = 0;
  b.has_bound = true;
  b.scenario_bound_v = 0.3;
  EXPECT_EQ(query_session_key(a), query_session_key(b));
  EXPECT_NE(query_coalesce_key(a), query_coalesce_key(b));

  WhatIfQuery c = a;
  c.seed = 8;  // different problem -> different session
  EXPECT_NE(query_session_key(a), query_session_key(c));
}

TEST(ServiceProtocol, CoalesceKeyMatchesIdenticalQueries) {
  EXPECT_EQ(query_coalesce_key(tiny_query()), query_coalesce_key(tiny_query()));
}

// -------------------------------------------------------- daemon e2e

TEST(ServiceServer, HelloGateAndMalformedBytes) {
  ServerOptions so;
  so.socket_path = test_socket_path("gate");
  Server server(std::move(so));
  ASSERT_TRUE(server.start());

  {  // a PDU before Hello is refused with kNeedHello
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server.socket_path().c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    ASSERT_TRUE(send_frame(fd, encode(Cancel{})));
    FrameReader reader(fd);
    Frame frame;
    ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
    const std::optional<Error> err = decode<Error>(frame);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::kNeedHello);
    ::close(fd);
  }

  {  // raw garbage bytes earn kMalformed and a close
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, server.socket_path().c_str(),
                 sizeof addr.sun_path - 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(::send(fd, junk, sizeof junk - 1, 0) > 0);
    FrameReader reader(fd);
    Frame frame;
    ASSERT_EQ(reader.next(&frame), FrameReader::Status::kFrame);
    const std::optional<Error> err = decode<Error>(frame);
    ASSERT_TRUE(err.has_value());
    EXPECT_EQ(err->code, ErrorCode::kMalformed);
    ::close(fd);
  }

  server.stop();
  EXPECT_GE(server.stats().malformed_frames, 1u);
}

TEST(ServiceServer, RejectsBadQueryAndUnknownCircuit) {
  ServerOptions so;
  so.socket_path = test_socket_path("badq");
  so.workers = 1;
  Server server(std::move(so));
  ASSERT_TRUE(server.start());

  Client client;
  ASSERT_TRUE(client.connect(server.socket_path()));

  WhatIfQuery bad = tiny_query();
  bad.rate = 2.0;  // out of range -> admission-time reject
  SubmitAck ack;
  ASSERT_TRUE(client.submit(bad, &ack));
  EXPECT_EQ(ack.reject, RejectReason::kBadQuery);
  EXPECT_EQ(ack.ticket, 0u);

  WhatIfQuery unknown;
  unknown.source = QuerySource::kSynthetic;
  unknown.circuit = "ibm99";  // validates, but assembly fails -> kFailed
  unknown.flow = 2;
  ASSERT_TRUE(client.submit(unknown, &ack));
  EXPECT_EQ(ack.reject, RejectReason::kNone);
  Result res;
  ASSERT_TRUE(client.wait(ack.ticket, &res));
  EXPECT_EQ(res.state, JobState::kFailed);
  EXPECT_NE(res.error.find("ibm99"), std::string::npos);

  Result missing;
  ASSERT_TRUE(client.poll(9999, 0, &missing));
  EXPECT_EQ(missing.state, JobState::kFailed);

  server.stop();
  EXPECT_EQ(server.stats().rejected_bad_query, 1u);
  EXPECT_EQ(server.stats().jobs_failed, 1u);
}

TEST(ServiceServer, CoalescesAndMatchesDirectRun) {
  ServerOptions so;
  so.socket_path = test_socket_path("coal");
  so.workers = 1;  // serialize compute so the target jobs stay queued
  Server server(std::move(so));
  ASSERT_TRUE(server.start());

  // A blocker on the same session occupies the lone worker while the two
  // identical target submits land, so the second MUST coalesce.
  WhatIfQuery blocker = tiny_query();
  blocker.has_bound = true;
  blocker.scenario_bound_v = 0.25;
  const WhatIfQuery target = tiny_query();

  Client a, b;
  ASSERT_TRUE(a.connect(server.socket_path()));
  ASSERT_TRUE(b.connect(server.socket_path()));

  SubmitAck blocker_ack, ack_a, ack_b;
  ASSERT_TRUE(a.submit(blocker, &blocker_ack));
  ASSERT_EQ(blocker_ack.reject, RejectReason::kNone);
  ASSERT_TRUE(a.submit(target, &ack_a));
  ASSERT_TRUE(b.submit(target, &ack_b));
  ASSERT_EQ(ack_a.reject, RejectReason::kNone);
  ASSERT_EQ(ack_b.reject, RejectReason::kNone);
  EXPECT_EQ(ack_a.ticket, ack_b.ticket) << "identical submits share a job";
  EXPECT_EQ(ack_a.coalesced, 0);
  EXPECT_EQ(ack_b.coalesced, 1);

  Result res_a, res_b, res_blocker;
  ASSERT_TRUE(a.wait(blocker_ack.ticket, &res_blocker));
  ASSERT_TRUE(a.wait(ack_a.ticket, &res_a));
  ASSERT_TRUE(b.wait(ack_b.ticket, &res_b));
  ASSERT_EQ(res_blocker.state, JobState::kDone);
  ASSERT_EQ(res_a.state, JobState::kDone);
  ASSERT_EQ(res_b.state, JobState::kDone);

  // Both clients see the identical summary (it is the same job).
  EXPECT_EQ(res_a.summary.route_hash, res_b.summary.route_hash);
  EXPECT_EQ(res_a.summary.state_hash, res_b.summary.state_hash);
  EXPECT_EQ(res_a.summary.violating, res_b.summary.violating);
  EXPECT_EQ(res_a.summary.total_shields, res_b.summary.total_shields);

  // Bit-identity against a direct in-process run of the same query.
  std::string why;
  const auto problem = assemble_problem(target, /*job_threads=*/0, &why);
  ASSERT_NE(problem, nullptr) << why;
  gsino::FlowSession direct(*problem);
  const gsino::FlowResult fr = direct.run(
      static_cast<gsino::FlowKind>(target.flow), scenario_of(target));
  EXPECT_EQ(res_a.summary.route_hash, router::route_hash(fr.routing()));
  EXPECT_EQ(res_a.summary.state_hash, gsino::state_fingerprint(fr));
  EXPECT_EQ(res_a.summary.violating, fr.violating);
  EXPECT_EQ(res_a.summary.unfixable, fr.unfixable);
  EXPECT_EQ(res_a.summary.total_wirelength_um, fr.total_wirelength_um);
  EXPECT_EQ(res_a.summary.total_shields, fr.total_shields);

  // The shared session means the target compute warm-started: Phase I ran
  // once (for the blocker) and never again.
  const obs::MetricsSnapshot snap = server.metrics();
  EXPECT_EQ(snap.value_of("service.coalesce_hits"), 1.0);
  EXPECT_EQ(snap.value_of("service.jobs_executed"), 2.0);
  EXPECT_EQ(snap.value_of("session.route_executed"), 1.0);
  EXPECT_EQ(res_a.summary.warm, 1);

  // Stats over the wire agree with the in-process snapshot.
  StatsReply reply;
  ASSERT_TRUE(a.stats(&reply));
  bool found = false;
  for (const StatsReply::Metric& m : reply.metrics) {
    if (m.name == "service.coalesce_hits") {
      found = true;
      EXPECT_EQ(m.value, 1.0);
    }
  }
  EXPECT_TRUE(found);
  server.stop();
}

TEST(ServiceServer, AdmissionControlAndCancel) {
  ServerOptions so;
  so.socket_path = test_socket_path("admit");
  so.workers = 1;
  so.max_queue = 2;
  so.max_inflight_per_client = 2;
  Server server(std::move(so));
  ASSERT_TRUE(server.start());

  Client a, b;
  ASSERT_TRUE(a.connect(server.socket_path()));
  ASSERT_TRUE(b.connect(server.socket_path()));

  // Client a fills its in-flight cap (distinct bounds -> no coalescing).
  std::vector<SubmitAck> acks;
  for (int i = 0; i < 2; ++i) {
    WhatIfQuery q = tiny_query();
    q.has_bound = true;
    q.scenario_bound_v = 0.2 + 0.05 * i;
    SubmitAck ack;
    ASSERT_TRUE(a.submit(q, &ack));
    ASSERT_EQ(ack.reject, RejectReason::kNone) << "submit " << i;
    acks.push_back(ack);
  }
  {
    WhatIfQuery q = tiny_query();
    q.has_bound = true;
    q.scenario_bound_v = 0.4;
    SubmitAck ack;
    ASSERT_TRUE(a.submit(q, &ack));
    EXPECT_EQ(ack.reject, RejectReason::kInflightCap);
  }

  // Client b sees the queue-full bound once 2 jobs are pending. At most
  // one of a's jobs is running, so at least one is queued; one more from b
  // can make the queue full depending on timing — submit until rejected
  // or accepted twice, both outcomes are legal; what must never happen is
  // an unbounded accept. (Deterministic queue-full is covered below via
  // cancel bookkeeping.)
  int accepted_b = 0;
  RejectReason last = RejectReason::kNone;
  for (int i = 0; i < 4 && last == RejectReason::kNone; ++i) {
    WhatIfQuery q = tiny_query();
    q.has_bound = true;
    q.scenario_bound_v = 0.5 + 0.05 * i;
    SubmitAck ack;
    ASSERT_TRUE(b.submit(q, &ack));
    last = ack.reject;
    if (ack.reject == RejectReason::kNone) ++accepted_b;
  }
  EXPECT_TRUE(last == RejectReason::kQueueFull ||
              last == RejectReason::kInflightCap);

  // Cancel whichever of a's jobs is still queued (the second one: the
  // lone worker can only have started the first).
  CancelAck cancel_ack;
  ASSERT_TRUE(a.cancel(acks[1].ticket, &cancel_ack));
  EXPECT_EQ(cancel_ack.cancelled, 1);
  Result res;
  ASSERT_TRUE(a.poll(acks[1].ticket, 0, &res));
  EXPECT_EQ(res.state, JobState::kCancelled);

  // Cancelling a terminal or unknown ticket is a no-op.
  ASSERT_TRUE(a.wait(acks[0].ticket, &res));
  ASSERT_TRUE(a.cancel(acks[0].ticket, &cancel_ack));
  EXPECT_EQ(cancel_ack.cancelled, 0);
  ASSERT_TRUE(a.cancel(424242, &cancel_ack));
  EXPECT_EQ(cancel_ack.cancelled, 0);

  server.stop();
  const ServiceStats stats = server.stats();
  // a's over-cap submit plus b's terminating rejection.
  EXPECT_EQ(stats.rejected_inflight_cap + stats.rejected_queue_full, 2u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(ServiceServer, ConcurrentClientsStress) {
  ServerOptions so;
  so.socket_path = test_socket_path("stress");
  so.workers = 2;
  so.max_sessions = 2;
  Server server(std::move(so));
  ASSERT_TRUE(server.start());
  ASSERT_TRUE(server.running());

  constexpr int kClients = 4;
  constexpr int kRequests = 3;
  std::atomic<int> done{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client;
      if (!client.connect(server.socket_path())) {
        failures.fetch_add(kRequests);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        WhatIfQuery q = tiny_query(/*seed=*/7 + (c % 2));  // 2 sessions
        q.has_bound = i > 0;
        q.scenario_bound_v = 0.15 + 0.03 * (c * kRequests + i);
        SubmitAck ack;
        Result res;
        if (client.submit(q, &ack) && ack.reject == RejectReason::kNone &&
            client.wait(ack.ticket, &res) && res.state == JobState::kDone) {
          done.fetch_add(1);
        } else {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(done.load(), kClients * kRequests);

  const obs::MetricsSnapshot snap = server.metrics();
  EXPECT_GE(snap.value_of("service.jobs_executed"), 1.0);
  EXPECT_EQ(snap.value_of("service.jobs_failed"), 0.0);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(ServiceServer, PreloadMakesFirstQueryWarmAcrossEviction) {
  ServerOptions so;
  so.socket_path = test_socket_path("preload");
  so.workers = 1;
  so.max_sessions = 1;
  Server server(std::move(so));
  ASSERT_TRUE(server.start());
  ASSERT_TRUE(server.preload(tiny_query(7)));

  Client client;
  ASSERT_TRUE(client.connect(server.socket_path()));

  // Landing on the preloaded session is a warm hit in the LRU sense
  // (session_warm_hits counts map hits, not compute reuse — the first
  // compute on a preloaded session still routes).
  SubmitAck ack;
  Result res;
  ASSERT_TRUE(client.submit(tiny_query(7), &ack));
  ASSERT_EQ(ack.reject, RejectReason::kNone);
  ASSERT_TRUE(client.wait(ack.ticket, &res));
  ASSERT_EQ(res.state, JobState::kDone);
  EXPECT_EQ(server.stats().session_warm_hits, 1u);

  // A different recipe evicts it (capacity 1)...
  ASSERT_TRUE(client.submit(tiny_query(8), &ack));
  ASSERT_EQ(ack.reject, RejectReason::kNone);
  ASSERT_TRUE(client.wait(ack.ticket, &res));
  ASSERT_EQ(res.state, JobState::kDone);
  EXPECT_GE(server.stats().sessions_evicted, 1u);

  // ...and the original recipe cold-starts a fresh session.
  ASSERT_TRUE(client.submit(tiny_query(7), &ack));
  ASSERT_TRUE(client.wait(ack.ticket, &res));
  ASSERT_EQ(res.state, JobState::kDone);
  EXPECT_GE(server.stats().sessions_created, 3u);
  server.stop();
}

}  // namespace
}  // namespace rlcr::service
