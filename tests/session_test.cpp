// The staged, re-entrant FlowSession API: artifact caching and
// invalidation, what-if re-solves that skip Phase I (proven by stage
// counters and bit-identical to from-scratch runs), cross-flow routing
// artifact sharing that reproduces the experiment goldens, the batched
// Phase III region re-solve path, and the stage observer.
#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.h"
#include "core/refine.h"
#include "core/session.h"

#include "golden_util.h"

namespace rlcr::gsino {
namespace {

/// Same configuration as integration_test's Pipeline, whose golden values
/// (IntegrationGolden.ThreeFlowsPinnedAtRateHalf) this file re-pins for
/// the shared-routing-artifact path.
struct Pipeline {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  explicit Pipeline(double rate, std::size_t nets = 400, std::uint64_t seed = 12)
      : spec(netlist::tiny_spec(nets, seed)) {
    spec.grid_cols = 12;
    spec.grid_rows = 12;
    spec.chip_w_um = 600.0;
    spec.chip_h_um = 600.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.0;
    design = netlist::generate(spec);
    params.sensitivity_rate = rate;
  }

  RoutingProblem problem() const { return make_problem(design, spec, params); }
};

// ---------------------------------------------------------- what-if reuse

TEST(Session, BoundResolveSkipsPhaseIAndIsBitIdentical) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);

  // GSINO at the params bound (0.15), then a what-if re-solve at 0.20.
  const FlowResult at15 = session.run(FlowKind::kGsino);
  ASSERT_EQ(session.counters().route_executed, 1u);

  Scenario looser;
  looser.bound_v = 0.20;
  const FlowResult at20 = session.run(FlowKind::kGsino, looser);

  // Phase I was requested again but not re-executed (the stage counters
  // are the proof the artifact was reused)...
  EXPECT_EQ(session.counters().route_requests, 2u);
  EXPECT_EQ(session.counters().route_executed, 1u);
  // ...while budgeting and Phase II ran for the new bound.
  EXPECT_EQ(session.counters().budget_executed, 2u);
  EXPECT_EQ(session.counters().solve_executed, 2u);
  EXPECT_EQ(at20.phase1.get(), at15.phase1.get());
  EXPECT_DOUBLE_EQ(at20.bound_v, 0.20);

  // Bit-identical to a from-scratch run whose params carry bound 0.20.
  Pipeline scratch(0.5);
  scratch.params.crosstalk_bound_v = 0.20;
  const RoutingProblem p20 = scratch.problem();
  FlowSession fresh(p20);
  const FlowResult ref = fresh.run(FlowKind::kGsino);

  EXPECT_EQ(router::route_hash(at20.routing()),
            router::route_hash(ref.routing()));
  EXPECT_DOUBLE_EQ(at20.total_wirelength_um, ref.total_wirelength_um);
  EXPECT_DOUBLE_EQ(at20.total_shields, ref.total_shields);
  EXPECT_EQ(at20.violating, ref.violating);
  EXPECT_EQ(at20.unfixable, ref.unfixable);
  EXPECT_DOUBLE_EQ(at20.area.width_um, ref.area.width_um);
  EXPECT_DOUBLE_EQ(at20.area.height_um, ref.area.height_um);
  ASSERT_EQ(at20.net_lsk().size(), ref.net_lsk().size());
  for (std::size_t n = 0; n < at20.net_lsk().size(); ++n) {
    EXPECT_EQ(at20.net_lsk()[n], ref.net_lsk()[n]) << "net " << n;
    EXPECT_EQ(at20.net_noise()[n], ref.net_noise()[n]) << "net " << n;
  }
}

TEST(Session, BudgetMarginResolveAlsoReusesRouting) {
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  (void)session.run(FlowKind::kGsino);
  Scenario tighter;
  tighter.budget_margin = 0.9;
  const FlowResult fr = session.run(FlowKind::kGsino, tighter);
  EXPECT_EQ(session.counters().route_executed, 1u);
  EXPECT_EQ(fr.budget->margin, 0.9);
  EXPECT_EQ(fr.violating, 0u);
}

TEST(Session, RepeatedRunIsFullyCached) {
  // Every stage — including Phase III, whose output is deterministic —
  // cache-hits when the same scenario is requested twice.
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  const FlowResult a = session.run(FlowKind::kGsino);
  const StageCounters first = session.counters();
  const FlowResult b = session.run(FlowKind::kGsino);
  EXPECT_EQ(session.counters().route_executed, first.route_executed);
  EXPECT_EQ(session.counters().budget_executed, first.budget_executed);
  EXPECT_EQ(session.counters().solve_executed, first.solve_executed);
  EXPECT_EQ(session.counters().refine_executed, first.refine_executed);
  EXPECT_EQ(session.counters().refine_requests, first.refine_requests + 1);
  EXPECT_EQ(a.phase3.get(), b.phase3.get());  // same refine artifact
}

TEST(Session, MarginIsNormalizedOutForNonMarginRules) {
  // Only GSINO's budget rule applies the margin; a margin-only what-if on
  // iSINO must be a full cache hit (no budget or Phase II re-run).
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  (void)session.run(FlowKind::kIsino);
  const std::size_t budgets = session.counters().budget_executed;
  const std::size_t solves = session.counters().solve_executed;
  Scenario tighter;
  tighter.budget_margin = 0.9;
  (void)session.run(FlowKind::kIsino, tighter);
  EXPECT_EQ(session.counters().budget_executed, budgets);
  EXPECT_EQ(session.counters().solve_executed, solves);
}

// ------------------------------------------------- cross-flow artifact use

TEST(Session, ThreeFlowsShareOneBaselineRoutingArtifact) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);

  const FlowResult idno = session.run(FlowKind::kIdNo);
  const FlowResult isino = session.run(FlowKind::kIsino);
  const FlowResult gsino_r = session.run(FlowKind::kGsino);

  // ID+NO and iSINO route with the identical profile and share the
  // artifact; GSINO's shield-reserving profile routes once more. Two
  // Phase I executions for three flows.
  EXPECT_EQ(idno.phase1.get(), isino.phase1.get());
  EXPECT_NE(gsino_r.phase1.get(), idno.phase1.get());
  EXPECT_EQ(session.counters().route_requests, 3u);
  EXPECT_EQ(session.counters().route_executed, 2u);

  // The shared-artifact path reproduces the experiment goldens pinned by
  // IntegrationGolden.ThreeFlowsPinnedAtRateHalf.
  EXPECT_DOUBLE_EQ(idno.total_wirelength_um, 132650.0);
  EXPECT_EQ(idno.violating, 86u);
  EXPECT_DOUBLE_EQ(idno.total_shields, 0.0);
  EXPECT_EQ(router::route_hash(idno.routing()), 13497901764394341437ULL);

  EXPECT_DOUBLE_EQ(isino.total_wirelength_um, 132650.0);
  EXPECT_EQ(isino.violating, 0u);
  EXPECT_DOUBLE_EQ(isino.total_shields, 1002.0);
  EXPECT_EQ(router::route_hash(isino.routing()), 13497901764394341437ULL);

  EXPECT_DOUBLE_EQ(gsino_r.total_wirelength_um, 134150.0);
  EXPECT_EQ(gsino_r.violating, 0u);
  EXPECT_DOUBLE_EQ(gsino_r.total_shields, 931.0);
  EXPECT_EQ(router::route_hash(gsino_r.routing()), 12686260652761461465ULL);
}

TEST(Session, ExperimentRunnerSharesRoutingPerCell) {
  // run_one drives one session per (circuit, rate) cell; its summaries
  // must match three independent from-scratch flows.
  netlist::SyntheticSpec spec = netlist::tiny_spec(180, 7);
  GsinoParams params;
  params.lr_max_outer_pass1 = 500;
  params.lr_max_outer_pass2 = 500;
  const CircuitRun cell = ExperimentRunner::run_one(spec, 0.5, params);

  GsinoParams p = params;
  p.sensitivity_rate = 0.5;
  const netlist::Netlist design = netlist::generate(spec);
  const RoutingProblem problem = make_problem(design, spec, p);
  const FlowSummary idno =
      summarize(FlowSession(problem).run(FlowKind::kIdNo), problem);
  const FlowSummary isino =
      summarize(FlowSession(problem).run(FlowKind::kIsino), problem);
  const FlowSummary gsino_s =
      summarize(FlowSession(problem).run(FlowKind::kGsino), problem);

  EXPECT_EQ(cell.idno.violating, idno.violating);
  EXPECT_DOUBLE_EQ(cell.idno.total_wirelength_um, idno.total_wirelength_um);
  EXPECT_DOUBLE_EQ(cell.isino.total_shields, isino.total_shields);
  EXPECT_DOUBLE_EQ(cell.isino.total_wirelength_um, isino.total_wirelength_um);
  EXPECT_DOUBLE_EQ(cell.gsino.total_shields, gsino_s.total_shields);
  EXPECT_EQ(cell.gsino.violating, gsino_s.violating);
}

// ----------------------------------------------------- staged invalidation

TEST(Session, ExplicitProfileChangeInvalidatesRouting) {
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  auto base = session.route(FlowKind::kIdNo);

  // Same profile -> cache hit (thread count is not part of the identity).
  router::IdRouterOptions same = session.router_profile(FlowKind::kIdNo);
  same.threads = 7;
  EXPECT_EQ(session.route(same, FlowKind::kIdNo).get(), base.get());
  EXPECT_EQ(session.counters().route_executed, 1u);

  // Different weights -> different artifact.
  router::IdRouterOptions heavier = session.router_profile(FlowKind::kIdNo);
  heavier.weights.gamma = 80.0;
  EXPECT_NE(session.route(heavier, FlowKind::kIdNo).get(), base.get());
  EXPECT_EQ(session.counters().route_executed, 2u);
}

TEST(Session, BudgetRulePerFlow) {
  EXPECT_EQ(budget_rule(FlowKind::kIdNo), BudgetRule::kManhattan);
  EXPECT_EQ(budget_rule(FlowKind::kIsino), BudgetRule::kRoutedLength);
  EXPECT_EQ(budget_rule(FlowKind::kGsino), BudgetRule::kManhattanMargin);
}

TEST(Session, StageNames) {
  EXPECT_STREQ(stage_name(Stage::kRoute), "route");
  EXPECT_STREQ(stage_name(Stage::kBudget), "budget");
  EXPECT_STREQ(stage_name(Stage::kSolveRegions), "solve_regions");
  EXPECT_STREQ(stage_name(Stage::kRefine), "refine");
}

// ------------------------------------------------------- batched re-solves

TEST(Session, BatchResolveBitIdenticalToSerialLoop) {
  // FlowState::resolve_regions through sino::solve_batch must reproduce
  // the one-at-a-time resolve_region loop bit for bit, at any thread
  // count (the golden for the Phase III batching satellite).
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);

  for (const int threads : {1, 4}) {
    FlowState serial = session.state(FlowKind::kGsino);
    FlowState batched = session.state(FlowKind::kGsino);

    std::vector<std::size_t> targets;
    for (std::size_t si = 0; si < serial.solutions.size(); ++si) {
      if (!serial.solutions[si].empty()) targets.push_back(si);
    }
    ASSERT_FALSE(targets.empty());

    for (std::size_t si : targets) {
      serial.resolve_region(si, /*allow_anneal=*/true);
    }
    batched.resolve_regions(targets, /*allow_anneal=*/true, threads);

    for (std::size_t si : targets) {
      EXPECT_EQ(serial.solutions[si].slots, batched.solutions[si].slots)
          << "threads " << threads << " sol " << si;
      EXPECT_EQ(serial.solutions[si].ki, batched.solutions[si].ki)
          << "threads " << threads << " sol " << si;
    }
    ASSERT_EQ(serial.net_lsk.size(), batched.net_lsk.size());
    for (std::size_t n = 0; n < serial.net_lsk.size(); ++n) {
      EXPECT_EQ(serial.net_lsk[n], batched.net_lsk[n])
          << "threads " << threads << " net " << n;
      EXPECT_EQ(serial.net_noise[n], batched.net_noise[n])
          << "threads " << threads << " net " << n;
    }
    for (std::size_t si : targets) {
      EXPECT_DOUBLE_EQ(serial.congestion->shields(
                           si / 2, static_cast<grid::Dir>(si % 2)),
                       batched.congestion->shields(
                           si / 2, static_cast<grid::Dir>(si % 2)));
    }
  }
}

TEST(Session, BatchedRefineThroughScenario) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  Scenario sc;
  sc.refine.batch_pass2 = true;
  sc.refine.threads = 4;
  const FlowResult fr = session.run(FlowKind::kGsino, sc);
  EXPECT_EQ(fr.violating, 0u);
  ASSERT_NE(fr.phase3, nullptr);
  EXPECT_GE(fr.phase3->stats.batch_sweeps, 0);
}

// --------------------------------------------------------------- observer

TEST(Session, ObserverSeesStagesAndReuse) {
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  std::vector<StageEvent> events;
  SessionOptions opt;
  opt.observer = [&](const StageEvent& ev) {
    if (ev.region == kNoRegion) events.push_back(ev);
  };
  FlowSession session(p, opt);

  (void)session.run(FlowKind::kGsino);
  ASSERT_EQ(events.size(), 4u);  // route, budget, solve_regions, refine
  EXPECT_EQ(events[0].stage, Stage::kRoute);
  EXPECT_EQ(events[1].stage, Stage::kBudget);
  EXPECT_EQ(events[2].stage, Stage::kSolveRegions);
  EXPECT_EQ(events[3].stage, Stage::kRefine);
  for (const StageEvent& ev : events) EXPECT_FALSE(ev.reused);

  events.clear();
  Scenario sc;
  sc.bound_v = 0.20;
  (void)session.run(FlowKind::kGsino, sc);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_TRUE(events[0].reused);    // Phase I artifact served from cache
  EXPECT_FALSE(events[1].reused);   // new bound -> new budget
  EXPECT_FALSE(events[2].reused);
}

TEST(Session, FlowRunnerShimDelegatesToSession) {
  const Pipeline pipe(0.3);
  const RoutingProblem p = pipe.problem();
  const FlowRunner runner(p);
  const FlowResult a = runner.run(FlowKind::kIdNo);
  FlowSession session(p);
  const FlowResult b = session.run(FlowKind::kIdNo);
  EXPECT_DOUBLE_EQ(a.total_wirelength_um, b.total_wirelength_um);
  EXPECT_EQ(a.violating, b.violating);
  EXPECT_EQ(router::route_hash(a.routing()), router::route_hash(b.routing()));
}

}  // namespace
}  // namespace rlcr::gsino
