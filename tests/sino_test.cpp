#include <gtest/gtest.h>

#include "ktable/keff.h"
#include "sino/anneal.h"
#include "sino/evaluator.h"
#include "sino/greedy.h"
#include "sino/net_order.h"
#include "sino/nss.h"
#include "util/rng.h"

namespace rlcr::sino {
namespace {

/// Instance with n nets, pairwise sensitivity from a seeded coin, uniform
/// Kth.
SinoInstance random_instance(std::size_t n, double rate, double kth,
                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<SinoNet> nets(n);
  for (std::size_t i = 0; i < n; ++i) {
    nets[i].net_id = static_cast<std::int32_t>(i);
    nets[i].si = rate;
    nets[i].kth = kth;
  }
  SinoInstance inst(std::move(nets));
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.bernoulli(rate)) inst.set_sensitive(i, j);
  return inst;
}

TEST(Instance, SensitivityMatrixIsSymmetric) {
  SinoInstance inst({SinoNet{0, 0.3, 1.0}, SinoNet{1, 0.3, 1.0},
                     SinoNet{2, 0.3, 1.0}});
  inst.set_sensitive(0, 2);
  EXPECT_TRUE(inst.sensitive(0, 2));
  EXPECT_TRUE(inst.sensitive(2, 0));
  EXPECT_FALSE(inst.sensitive(0, 1));
  EXPECT_FALSE(inst.sensitive(1, 1));
  EXPECT_THROW(inst.set_sensitive(0, 9), std::out_of_range);
}

TEST(Instance, SiSums) {
  SinoInstance inst({SinoNet{0, 0.2, 1.0}, SinoNet{1, 0.4, 1.0}});
  EXPECT_DOUBLE_EQ(inst.sum_si(), 0.6);
  EXPECT_DOUBLE_EQ(inst.sum_si2(), 0.04 + 0.16);
}

// --------------------------------------------------------------- evaluator

TEST(Evaluator, CapacitiveAdjacencyAcrossEmpties) {
  SinoInstance inst({SinoNet{0, 0.3, 10.0}, SinoNet{1, 0.3, 10.0}});
  inst.set_sensitive(0, 1);
  const ktable::KeffModel keff;
  const SinoEvaluator eval(inst, keff);

  // Adjacent sensitive nets: capacitive violation.
  EXPECT_EQ(eval.check({0, 1}).capacitive_violations, 1);
  // An empty slot between them does NOT block coupling.
  EXPECT_EQ(eval.check({0, kEmptySlot, 1}).capacitive_violations, 1);
  // A shield does.
  EXPECT_EQ(eval.check({0, kShieldSlot, 1}).capacitive_violations, 0);
}

TEST(Evaluator, InductiveCheckAgainstKth) {
  SinoInstance inst({SinoNet{0, 0.3, 0.5}, SinoNet{1, 0.3, 10.0}});
  inst.set_sensitive(0, 1);
  const ktable::KeffModel keff;
  const SinoEvaluator eval(inst, keff);
  // Net 0 sees Ki = profile(1) = 1.0 > its Kth 0.5; net 1 is fine.
  const SinoCheck c = eval.check({0, kShieldSlot, 1});
  EXPECT_EQ(c.capacitive_violations, 0);
  // With the shield, Ki = profile(2) * attenuation ~ 0.27 < 0.5 -> ok.
  EXPECT_EQ(c.inductive_violations, 0);
  const SinoCheck bare = eval.check({0, kEmptySlot, 1});
  EXPECT_EQ(bare.inductive_violations, 1);
  EXPECT_GT(bare.inductive_excess, 0.0);
}

TEST(Evaluator, PlacedAllDetectsMissingAndDuplicates) {
  SinoInstance inst({SinoNet{0, 0.3, 1.0}, SinoNet{1, 0.3, 1.0}});
  const ktable::KeffModel keff;
  const SinoEvaluator eval(inst, keff);
  EXPECT_TRUE(eval.check({0, 1}).placed_all);
  EXPECT_FALSE(eval.check({0}).placed_all);
  EXPECT_FALSE(eval.check({0, 0, 1}).placed_all);
}

TEST(Evaluator, AreaAndShieldCount) {
  const SlotVec slots{0, kShieldSlot, kEmptySlot, 1};
  EXPECT_EQ(SinoEvaluator::area(slots), 3);
  EXPECT_EQ(SinoEvaluator::shield_count(slots), 1);
}

TEST(Evaluator, KiMatchesManualSum) {
  SinoInstance inst({SinoNet{0, 0.3, 9.0}, SinoNet{1, 0.3, 9.0},
                     SinoNet{2, 0.3, 9.0}});
  inst.set_sensitive(0, 1);
  inst.set_sensitive(0, 2);
  const ktable::KeffModel keff;
  const SinoEvaluator eval(inst, keff);
  const SlotVec slots{1, 0, 2};  // net 0 in the middle
  const double ki0 = eval.ki(slots, 1);
  EXPECT_NEAR(ki0, 2.0 * keff.profile(1), 1e-12);
  const auto all = eval.all_ki(slots);
  EXPECT_NEAR(all[0], ki0, 1e-12);
  EXPECT_NEAR(all[1], keff.profile(1), 1e-12);  // net 1 attacked by 0 only
}

// ----------------------------------------------------------------- greedy

class GreedyFeasibility
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GreedyFeasibility, SolutionsAreFeasibleAcrossSizesAndRates) {
  const auto [n, rate] = GetParam();
  const ktable::KeffModel keff;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SinoInstance inst =
        random_instance(static_cast<std::size_t>(n), rate, 1.5, seed);
    const SlotVec slots = solve_greedy(inst, keff);
    const SinoEvaluator eval(inst, keff);
    const SinoCheck c = eval.check(slots);
    EXPECT_TRUE(c.placed_all) << "n=" << n << " rate=" << rate << " seed=" << seed;
    EXPECT_EQ(c.capacitive_violations, 0);
    EXPECT_EQ(c.inductive_violations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyFeasibility,
    ::testing::Combine(::testing::Values(2, 4, 8, 12, 20),
                       ::testing::Values(0.1, 0.3, 0.5, 0.8)));

TEST(Greedy, EmptyInstance) {
  const ktable::KeffModel keff;
  const SinoInstance inst;
  EXPECT_TRUE(solve_greedy(inst, keff).empty());
}

TEST(Greedy, NoSensitivityNeedsNoShields) {
  const ktable::KeffModel keff;
  SinoInstance inst({SinoNet{0, 0.0, 5.0}, SinoNet{1, 0.0, 5.0},
                     SinoNet{2, 0.0, 5.0}});
  const SlotVec slots = solve_greedy(inst, keff);
  EXPECT_EQ(SinoEvaluator::shield_count(slots), 0);
  EXPECT_EQ(SinoEvaluator::area(slots), 3);
}

TEST(Greedy, CompactShieldsPreservesFeasibility) {
  const ktable::KeffModel keff;
  const SinoInstance inst = random_instance(10, 0.5, 1.2, 77);
  SlotVec slots = solve_greedy(inst, keff);
  // Pad with redundant shields, then compact.
  slots.push_back(kShieldSlot);
  slots.insert(slots.begin(), kShieldSlot);
  const SinoEvaluator eval(inst, keff);
  const int removed = compact_shields(slots, eval);
  EXPECT_GE(removed, 2);
  const SinoCheck c = eval.check(slots);
  EXPECT_TRUE(c.feasible());
}

TEST(Greedy, TightBoundsForceShields) {
  const ktable::KeffModel keff;
  // Fully sensitive pair with tiny Kth: at least one shield is required.
  SinoInstance inst({SinoNet{0, 1.0, 0.3}, SinoNet{1, 1.0, 0.3}});
  inst.set_sensitive(0, 1);
  const SlotVec slots = solve_greedy(inst, keff);
  EXPECT_GE(SinoEvaluator::shield_count(slots), 1);
  EXPECT_TRUE(SinoEvaluator(inst, keff).check(slots).feasible());
}

// ----------------------------------------------------------------- anneal

TEST(Anneal, NeverWorseThanGreedy) {
  const ktable::KeffModel keff;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const SinoInstance inst = random_instance(10, 0.5, 1.0, seed * 13);
    const SlotVec greedy = solve_greedy(inst, keff);
    AnnealOptions opt;
    opt.seed = seed;
    opt.iterations = 4000;
    const AnnealResult best = solve_anneal(inst, keff, opt);
    EXPECT_TRUE(best.feasible);
    EXPECT_LE(SinoEvaluator::area(best.slots), SinoEvaluator::area(greedy));
    EXPECT_TRUE(SinoEvaluator(inst, keff).check(best.slots).feasible());
  }
}

TEST(Anneal, EmptyInstanceIsHandled) {
  const ktable::KeffModel keff;
  const SinoInstance inst;
  const AnnealResult r = solve_anneal(inst, keff);
  EXPECT_TRUE(r.slots.empty());
}

TEST(Anneal, DeterministicInSeed) {
  const ktable::KeffModel keff;
  const SinoInstance inst = random_instance(8, 0.4, 1.2, 5);
  AnnealOptions opt;
  opt.seed = 9;
  opt.iterations = 2000;
  const AnnealResult a = solve_anneal(inst, keff, opt);
  const AnnealResult b = solve_anneal(inst, keff, opt);
  EXPECT_EQ(a.slots, b.slots);
}

// --------------------------------------------------------------- ordering

TEST(NetOrder, ProducesPermutationWithoutShields) {
  const ktable::KeffModel keff;
  const SinoInstance inst = random_instance(12, 0.4, 1.0, 3);
  const NetOrderResult r = solve_net_order(inst, keff);
  EXPECT_EQ(r.slots.size(), 12u);
  std::vector<int> seen(12, 0);
  for (ktable::Slot s : r.slots) {
    ASSERT_GE(s, 0);
    ++seen[static_cast<std::size_t>(s)];
  }
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST(NetOrder, SparseSensitivityReachesZeroAdjacency) {
  const ktable::KeffModel keff;
  // A 6-cycle of sensitivities is 2-colourable in the complement: a
  // sensible ordering exists with no adjacent sensitive pair.
  std::vector<SinoNet> nets(6);
  for (std::size_t i = 0; i < 6; ++i) nets[i] = SinoNet{static_cast<int>(i), 0.3, 1.0};
  SinoInstance inst(std::move(nets));
  for (std::size_t i = 0; i < 6; ++i) inst.set_sensitive(i, (i + 1) % 6);
  const NetOrderResult r = solve_net_order(inst, keff);
  EXPECT_EQ(r.adjacent_sensitive_pairs, 0);
}

TEST(NetOrder, ReportsAdjacencyCountConsistently) {
  const ktable::KeffModel keff;
  const SinoInstance inst = random_instance(10, 0.6, 1.0, 8);
  const NetOrderResult r = solve_net_order(inst, keff);
  int manual = 0;
  for (std::size_t s = 1; s < r.slots.size(); ++s) {
    if (inst.sensitive(static_cast<std::size_t>(r.slots[s - 1]),
                       static_cast<std::size_t>(r.slots[s]))) {
      ++manual;
    }
  }
  EXPECT_EQ(manual, r.adjacent_sensitive_pairs);
}

// -------------------------------------------------------------------- Nss

TEST(Nss, ZeroForEmptyRegion) {
  const NssModel m;
  EXPECT_DOUBLE_EQ(m.estimate(0.0, 0.0, 0.0), 0.0);
}

TEST(Nss, NonNegativeEverywhere) {
  const NssModel m;
  for (double nns = 1; nns <= 30; nns += 3) {
    for (double rate = 0.0; rate <= 0.8; rate += 0.2) {
      const double sum_si = nns * rate;
      const double sum_si2 = nns * rate * rate;
      EXPECT_GE(m.estimate(nns, sum_si, sum_si2), 0.0);
    }
  }
}

TEST(Nss, GrowsWithSensitivity) {
  const NssModel m;
  const double nns = 12;
  const double lo = m.estimate(nns, nns * 0.1, nns * 0.01);
  const double hi = m.estimate(nns, nns * 0.6, nns * 0.36);
  EXPECT_GT(hi, lo);
}

TEST(Nss, FitReproducesSolverBehaviour) {
  // Small re-fit: the fitted model must track fresh min-area solutions with
  // modest error (the paper claims <= 10% for the full fit; the miniature
  // fit here gets a looser budget).
  const ktable::KeffModel keff;
  NssFitOptions opt;
  opt.samples = 60;
  opt.max_nets = 12;
  opt.anneal_iterations = 800;
  opt.seed = 19;
  const NssFitReport report = fit_nss(keff, opt);
  EXPECT_EQ(report.samples, 60);
  EXPECT_LT(report.mean_rel_error, 0.6);
  EXPECT_LT(report.mean_abs_error, 2.0);
}

}  // namespace
}  // namespace rlcr::sino
