// Speculative-batch execution (parallel/speculate.h) and its two
// integrations: the Phase I deletion loop and Phase III refinement pass 1.
// The contract under test is bit-identity — speculation is validated
// memoization, so the routed / refined state must equal the serial path's
// at every (threads, speculate_batch) combination, with threads == 1 or
// batch <= 1 being the exact serial path (and zero speculation counters).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/experiment.h"
#include "core/refine.h"
#include "core/session.h"
#include "grid/region_grid.h"
#include "parallel/speculate.h"
#include "router/id_router.h"
#include "router/route_types.h"
#include "sino/nss.h"
#include "util/indexed_heap.h"
#include "util/rng.h"

namespace rlcr {
namespace {

// ------------------------------------------------------------- primitives

TEST(SpecStats, AccumulateAcrossStages) {
  parallel::SpecStats a{.attempted = 5, .committed = 3, .replayed = 1};
  parallel::SpecStats b{.attempted = 2, .committed = 1, .replayed = 1};
  a += b;
  EXPECT_EQ(a.attempted, 7u);
  EXPECT_EQ(a.committed, 4u);
  EXPECT_EQ(a.replayed, 2u);
}

TEST(ReadSet, FirstObservationIsTheSnapshotVersion) {
  parallel::ReadSet rs;
  rs.record(7, 1);
  rs.record(9, 4);
  rs.record(7, 99);  // duplicate key: versions cannot move mid-snapshot,
                     // so the first recording stands
  ASSERT_EQ(rs.entries().size(), 2u);
  EXPECT_EQ(rs.entries()[0], (std::pair<std::uint64_t, std::uint32_t>{7, 1}));
  EXPECT_EQ(rs.entries()[1], (std::pair<std::uint64_t, std::uint32_t>{9, 4}));
}

TEST(ReadSet, ValidIffEveryInputIsUntouched) {
  parallel::ReadSet rs;
  rs.record(1, 10);
  rs.record(2, 20);
  std::vector<std::uint32_t> live{0, 10, 20};
  const auto version_of = [&](std::uint64_t key) {
    return live[static_cast<std::size_t>(key)];
  };
  EXPECT_TRUE(rs.valid(version_of));
  live[2] = 21;  // one commit touched one recorded input
  EXPECT_FALSE(rs.valid(version_of));

  rs.clear();
  EXPECT_TRUE(rs.entries().empty());
  EXPECT_TRUE(rs.valid(version_of));  // empty read set is vacuously valid
}

TEST(Speculate, EvaluatesEverySlotExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<int> hits(37, 0);
    std::vector<std::size_t> slot(37, 0);
    parallel::speculate(hits.size(), threads, [&](std::size_t i, int worker) {
      ++hits[i];       // slot i is owned by this evaluation
      slot[i] = i * i; // results land in caller-visible memo slots
      (void)worker;
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "i=" << i << " threads=" << threads;
      ASSERT_EQ(slot[i], i * i);
    }
  }
}

// The non-mutating candidate predictor the router's snapshot phase uses.
TEST(IndexedMaxHeap, TopKMatchesPopOrderWithoutMutating) {
  util::IndexedMaxHeap heap(64);
  util::Xoshiro256 rng(3);
  for (std::int32_t id = 0; id < 64; ++id) {
    heap.push(id, rng.uniform(0.0, 10.0));
  }
  // Inject ties so the (key, id) tiebreak is exercised.
  heap.update(11, 5.0);
  heap.update(29, 5.0);
  heap.update(3, 5.0);

  const auto predicted = heap.top_k(10);
  ASSERT_EQ(predicted.size(), 10u);
  EXPECT_EQ(heap.size(), 64u);  // prediction never mutates the heap

  // The prediction IS the pop order: popping the same heap afterwards
  // yields the same (key, id) sequence.
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    const auto [id, key] = heap.pop();
    EXPECT_EQ(predicted[i].id, id) << "rank " << i;
    EXPECT_EQ(predicted[i].key, key) << "rank " << i;
  }
}

TEST(IndexedMaxHeap, TopKClampsToSizeAndHandlesEmpty) {
  util::IndexedMaxHeap heap(8);
  EXPECT_TRUE(heap.top_k(4).empty());
  heap.push(0, 1.0);
  heap.push(1, 3.0);
  const auto all = heap.top_k(100);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, 1);
  EXPECT_EQ(all[1].id, 0);
  EXPECT_TRUE(heap.top_k(0).empty());
}

// ---------------------------------------------- Phase I: deletion loop

grid::RegionGrid spec_grid(std::int32_t side = 12, int cap = 8) {
  grid::RegionGridSpec s;
  s.cols = side;
  s.rows = side;
  s.region_w_um = 20.0;
  s.region_h_um = 25.0;
  s.h_capacity = cap;
  s.v_capacity = cap;
  return grid::RegionGrid(s);
}

std::vector<router::RouterNet> spec_nets(const grid::RegionGrid& g,
                                         std::size_t count,
                                         std::uint64_t seed,
                                         std::int32_t spread = 4) {
  util::Xoshiro256 rng(seed);
  std::vector<router::RouterNet> nets(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
    const auto cx =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(g.cols())));
    const auto cy =
        static_cast<std::int32_t>(rng.below(static_cast<std::uint64_t>(g.rows())));
    const std::size_t degree = 2 + rng.below(3);
    for (std::size_t p = 0; p < degree; ++p) {
      geom::Point pt{
          std::clamp(cx + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.cols() - 1),
          std::clamp(cy + static_cast<std::int32_t>(rng.range(-spread, spread)),
                     0, g.rows() - 1)};
      if (std::find(nets[i].pins.begin(), nets[i].pins.end(), pt) ==
          nets[i].pins.end()) {
        nets[i].pins.push_back(pt);
      }
    }
    if (nets[i].pins.size() < 2) {
      nets[i].pins.push_back(
          geom::Point{(cx + 1) % g.cols(), (cy + 1) % g.rows()});
    }
  }
  return nets;
}

router::RoutingResult route_at(const grid::RegionGrid& g,
                               const std::vector<router::RouterNet>& nets,
                               int threads, int batch) {
  router::IdRouterOptions opt;
  opt.threads = threads;
  opt.speculate_batch = batch;
  const sino::NssModel nss;
  const router::IdRouter router(g, nss, opt);
  return router.route(nets);
}

TEST(SpeculativeRoute, BitIdenticalAcrossThreadsAndBatchWidths) {
  const grid::RegionGrid g = spec_grid();
  const auto nets = spec_nets(g, 120, 5);

  const router::RoutingResult serial = route_at(g, nets, 1, 8);
  const std::uint64_t golden = router::route_hash(serial);
  EXPECT_EQ(serial.stats.spec_attempted, 0u);  // threads == 1: serial path
  EXPECT_EQ(serial.stats.spec_committed, 0u);
  EXPECT_EQ(serial.stats.spec_replayed, 0u);

  for (int threads : {2, 8}) {
    for (int batch : {1, 4, 16}) {
      const router::RoutingResult res = route_at(g, nets, threads, batch);
      EXPECT_EQ(router::route_hash(res), golden)
          << "threads=" << threads << " batch=" << batch;
      EXPECT_EQ(res.total_wirelength_um, serial.total_wirelength_um);
      EXPECT_EQ(res.stats.edges_deleted, serial.stats.edges_deleted);
      EXPECT_EQ(res.stats.edges_locked, serial.stats.edges_locked);
      if (batch <= 1) {
        EXPECT_EQ(res.stats.spec_attempted, 0u);  // batch <= 1: serial path
      } else {
        EXPECT_GT(res.stats.spec_attempted, 0u)
            << "threads=" << threads << " batch=" << batch;
        // Every consumed memo was either committed or replayed; the rest
        // were mispredictions, so consumed never exceeds attempted.
        EXPECT_LE(res.stats.spec_committed + res.stats.spec_replayed,
                  res.stats.spec_attempted);
        EXPECT_GT(res.stats.spec_committed, 0u);
      }
    }
  }
}

TEST(SpeculativeRoute, CountersAreDeterministicForFixedKnobs) {
  const grid::RegionGrid g = spec_grid();
  const auto nets = spec_nets(g, 80, 9);
  const router::RoutingResult a = route_at(g, nets, 2, 8);
  const router::RoutingResult b = route_at(g, nets, 2, 8);
  EXPECT_EQ(a.stats.spec_attempted, b.stats.spec_attempted);
  EXPECT_EQ(a.stats.spec_committed, b.stats.spec_committed);
  EXPECT_EQ(a.stats.spec_replayed, b.stats.spec_replayed);
}

TEST(SpeculativeRoute, ConflictingCandidatesAreReplayedNotCorrupted) {
  // Force intra-batch conflicts: a handful of nets with big overlapping
  // boxes means consecutive top-of-heap candidates routinely belong to the
  // same net, so a commit invalidates the memos speculated for its
  // siblings (net_touch moved) and the serial order must replay them.
  const grid::RegionGrid g = spec_grid(10, 4);
  const auto nets = spec_nets(g, 6, 21, /*spread=*/8);

  const router::RoutingResult serial = route_at(g, nets, 1, 1);
  const router::RoutingResult spec = route_at(g, nets, 2, 16);

  EXPECT_GT(spec.stats.spec_replayed, 0u) << "fixture never conflicted";
  EXPECT_EQ(router::route_hash(spec), router::route_hash(serial));
  EXPECT_EQ(spec.total_wirelength_um, serial.total_wirelength_um);
}

// ------------------------------------------- Phase III: refine pass 1

/// A congested little problem that reliably leaves Phase II with
/// violations for pass 1 to work on (mirrors the refiner tests' fixture).
struct RefineFixture {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  gsino::GsinoParams params;

  RefineFixture() : spec(netlist::tiny_spec(500, 77)) {
    spec.grid_cols = 14;
    spec.grid_rows = 14;
    spec.chip_w_um = 700.0;
    spec.chip_h_um = 700.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.5;
    design = netlist::generate(spec);
    params.sensitivity_rate = 0.5;
  }

  gsino::RoutingProblem problem() const {
    return gsino::make_problem(design, spec, params);
  }
};

void expect_states_identical(const gsino::FlowState& a,
                             const gsino::FlowState& b, int threads,
                             int batch) {
  EXPECT_EQ(a.violating, b.violating) << "threads=" << threads
                                      << " batch=" << batch;
  EXPECT_EQ(a.unfixable, b.unfixable);
  EXPECT_EQ(a.congestion->total_shields(), b.congestion->total_shields());
  ASSERT_EQ(a.net_lsk.size(), b.net_lsk.size());
  for (std::size_t n = 0; n < a.net_lsk.size(); ++n) {
    ASSERT_EQ(a.net_lsk[n], b.net_lsk[n])
        << "net " << n << " threads=" << threads << " batch=" << batch;
    ASSERT_EQ(a.net_noise[n], b.net_noise[n]) << "net " << n;
  }
  ASSERT_EQ(a.solutions.size(), b.solutions.size());
  for (std::size_t si = 0; si < a.solutions.size(); ++si) {
    ASSERT_EQ(a.solutions[si].slots, b.solutions[si].slots) << "sol " << si;
    ASSERT_EQ(a.solutions[si].ki, b.solutions[si].ki) << "sol " << si;
  }
}

TEST(SpeculativeRefine, Pass1BitIdenticalAcrossThreadsAndBatchWidths) {
  const RefineFixture fx;
  const gsino::RoutingProblem problem = fx.problem();
  gsino::FlowSession session(problem);
  const gsino::LocalRefiner refiner(problem);

  gsino::FlowState serial = session.state(gsino::FlowKind::kGsino);
  ASSERT_GT(serial.violating, 0u) << "fixture leaves pass 1 nothing to do";
  gsino::RefineStats serial_stats;
  gsino::RefineOptions serial_opt;
  serial_opt.threads = 1;
  refiner.eliminate_violations(serial, serial_stats, serial_opt);
  serial.refresh_noise();
  EXPECT_EQ(serial_stats.spec_attempted, 0);  // threads == 1: serial path
  EXPECT_EQ(serial_stats.spec_committed, 0);
  EXPECT_EQ(serial_stats.spec_replayed, 0);

  for (int threads : {2, 8}) {
    for (int batch : {1, 4, 16}) {
      gsino::FlowState fs = session.state(gsino::FlowKind::kGsino);
      gsino::RefineStats stats;
      gsino::RefineOptions opt;
      opt.threads = threads;
      opt.speculate_batch = batch;
      refiner.eliminate_violations(fs, stats, opt);
      fs.refresh_noise();

      expect_states_identical(serial, fs, threads, batch);
      EXPECT_EQ(stats.pass1_nets_fixed, serial_stats.pass1_nets_fixed);
      EXPECT_EQ(stats.pass1_resolves, serial_stats.pass1_resolves);
      EXPECT_EQ(stats.pass1_gave_up, serial_stats.pass1_gave_up);
      if (batch <= 1) {
        EXPECT_EQ(stats.spec_attempted, 0);
      } else {
        EXPECT_GT(stats.spec_attempted, 0)
            << "threads=" << threads << " batch=" << batch;
        EXPECT_LE(stats.spec_committed + stats.spec_replayed,
                  stats.spec_attempted);
        EXPECT_GT(stats.spec_committed, 0);
      }
    }
  }
}

TEST(SpeculativeRefine, ConflictingAttemptsAreReplayedNotCorrupted) {
  // Violating nets in a congested fixture share regions, so within a wide
  // batch the worst attempt's commit moves region/LSK versions other
  // attempts recorded — their memos must be replayed, and the refined
  // state must still equal the serial pass bit for bit. A small hot grid
  // with high sensitivity maximizes the overlap pressure.
  RefineFixture fx;
  fx.spec.grid_cols = 8;
  fx.spec.grid_rows = 8;
  fx.spec.chip_w_um = 400.0;
  fx.spec.chip_h_um = 400.0;
  fx.params.sensitivity_rate = 0.9;
  fx.design = netlist::generate(fx.spec);
  const gsino::RoutingProblem problem = fx.problem();
  gsino::FlowSession session(problem);
  const gsino::LocalRefiner refiner(problem);

  gsino::FlowState serial = session.state(gsino::FlowKind::kGsino);
  gsino::RefineStats serial_stats;
  gsino::RefineOptions serial_opt;
  serial_opt.threads = 1;
  refiner.eliminate_violations(serial, serial_stats, serial_opt);
  serial.refresh_noise();

  gsino::FlowState fs = session.state(gsino::FlowKind::kGsino);
  gsino::RefineStats stats;
  gsino::RefineOptions opt;
  opt.threads = 2;
  opt.speculate_batch = 16;
  refiner.eliminate_violations(fs, stats, opt);
  fs.refresh_noise();

  EXPECT_GT(stats.spec_replayed, 0) << "fixture never conflicted";
  expect_states_identical(serial, fs, 2, 16);
}

TEST(SpeculativeRefine, FullRefineMatchesSerialThroughRefineEntry) {
  // End to end through refine() (pass 1 + pass 2): speculation in pass 1
  // must not leak differences into pass 2's input.
  const RefineFixture fx;
  const gsino::RoutingProblem problem = fx.problem();
  gsino::FlowSession session(problem);
  const gsino::LocalRefiner refiner(problem);

  gsino::FlowState a = session.state(gsino::FlowKind::kGsino);
  gsino::FlowState b = session.state(gsino::FlowKind::kGsino);
  gsino::RefineOptions serial_opt;
  serial_opt.threads = 1;
  gsino::RefineOptions spec_opt;
  spec_opt.threads = 8;
  spec_opt.speculate_batch = 8;
  const gsino::RefineStats sa = refiner.refine(a, serial_opt);
  const gsino::RefineStats sb = refiner.refine(b, spec_opt);

  expect_states_identical(a, b, 8, 8);
  EXPECT_EQ(sa.pass1_nets_fixed, sb.pass1_nets_fixed);
  EXPECT_EQ(sa.pass2_accepted, sb.pass2_accepted);
  EXPECT_EQ(sa.pass2_shields_removed, sb.pass2_shields_removed);
}

// ------------------------------------------------- session counter plumbing

TEST(SpeculativeRoute, SessionSurfacesSpeculationCounters) {
  const RefineFixture fx;
  const gsino::RoutingProblem problem = fx.problem();
  gsino::FlowSession session(problem);

  router::IdRouterOptions ropt = problem.params().router;
  ropt.threads = 2;
  const auto phase1 = session.route(ropt, gsino::FlowKind::kGsino);
  EXPECT_EQ(session.counters().route_spec_attempted,
            phase1->routing->stats.spec_attempted);
  EXPECT_GT(session.counters().route_spec_attempted, 0u);

  const auto budget =
      session.budget(gsino::FlowKind::kGsino, phase1, 0.15, 1.0);
  const auto solve =
      session.solve_regions(gsino::FlowKind::kGsino, phase1, budget, false);
  gsino::RefineOptions fopt;
  fopt.threads = 2;
  const auto refined = session.refine(solve, fopt);
  EXPECT_EQ(session.counters().refine_spec_attempted,
            static_cast<std::size_t>(refined->stats.spec_attempted));
  EXPECT_EQ(session.counters().refine_spec_committed +
                session.counters().refine_spec_replayed <=
            session.counters().refine_spec_attempted,
            true);
}

// ------------------------------------------------- adaptive batch width

TEST(AdaptiveBatch, GrowsOnCommitsShrinksOnReplayStorms) {
  parallel::AdaptiveBatchOptions opt;
  opt.initial = 8;
  opt.min_batch = 2;
  opt.max_batch = 32;
  parallel::AdaptiveBatch ab(opt);
  EXPECT_EQ(ab.width(), 8);
  EXPECT_EQ(ab.max_width(), 32);

  ab.update({.attempted = 0, .committed = 0, .replayed = 0});  // no-op round
  EXPECT_EQ(ab.width(), 8);

  ab.update({.attempted = 10, .committed = 8, .replayed = 1});  // high commit
  EXPECT_EQ(ab.width(), 16);
  ab.update({.attempted = 16, .committed = 14, .replayed = 0});
  EXPECT_EQ(ab.width(), 32);
  ab.update({.attempted = 32, .committed = 30, .replayed = 0});
  EXPECT_EQ(ab.width(), 32);  // clamped at max_batch

  ab.update({.attempted = 32, .committed = 10, .replayed = 20});  // storm
  EXPECT_EQ(ab.width(), 16);
  ab.update({.attempted = 16, .committed = 2, .replayed = 12});
  EXPECT_EQ(ab.width(), 8);
  ab.update({.attempted = 8, .committed = 0, .replayed = 8});
  ab.update({.attempted = 8, .committed = 0, .replayed = 8});
  ab.update({.attempted = 8, .committed = 0, .replayed = 8});
  EXPECT_EQ(ab.width(), 2);  // clamped at min_batch

  // Middling rounds (no threshold crossed) hold the width steady.
  ab.update({.attempted = 10, .committed = 4, .replayed = 2});
  EXPECT_EQ(ab.width(), 2);
}

TEST(AdaptiveBatch, RouteBatchZeroIsAdaptiveDeterministicAndBitIdentical) {
  const grid::RegionGrid g = spec_grid();
  const auto nets = spec_nets(g, 120, 5);

  const router::RoutingResult serial = route_at(g, nets, 1, 8);
  const std::uint64_t golden = router::route_hash(serial);

  // speculate_batch == 0 selects the adaptive controller; the deletion
  // loop's round deltas are deterministic at a fixed thread count, so the
  // width trajectory — and with it every counter — must repeat exactly.
  const router::RoutingResult a = route_at(g, nets, 2, 0);
  const router::RoutingResult b = route_at(g, nets, 2, 0);
  EXPECT_EQ(router::route_hash(a), golden);
  EXPECT_EQ(router::route_hash(b), golden);
  EXPECT_EQ(a.total_wirelength_um, serial.total_wirelength_um);
  EXPECT_GT(a.stats.spec_attempted, 0u);
  EXPECT_EQ(a.stats.spec_attempted, b.stats.spec_attempted);
  EXPECT_EQ(a.stats.spec_committed, b.stats.spec_committed);
  EXPECT_EQ(a.stats.spec_replayed, b.stats.spec_replayed);

  // threads == 1 stays the exact serial path even at batch 0.
  const router::RoutingResult one = route_at(g, nets, 1, 0);
  EXPECT_EQ(router::route_hash(one), golden);
  EXPECT_EQ(one.stats.spec_attempted, 0u);
}

TEST(AdaptiveBatch, RefineBatchZeroMatchesSerialBitForBit) {
  const RefineFixture fx;
  const gsino::RoutingProblem problem = fx.problem();
  gsino::FlowSession session(problem);
  const gsino::LocalRefiner refiner(problem);

  gsino::FlowState serial = session.state(gsino::FlowKind::kGsino);
  gsino::RefineStats serial_stats;
  gsino::RefineOptions serial_opt;
  serial_opt.threads = 1;
  refiner.eliminate_violations(serial, serial_stats, serial_opt);
  serial.refresh_noise();

  gsino::FlowState fs = session.state(gsino::FlowKind::kGsino);
  gsino::RefineStats stats;
  gsino::RefineOptions opt;
  opt.threads = 2;
  opt.speculate_batch = 0;  // adaptive
  refiner.eliminate_violations(fs, stats, opt);
  fs.refresh_noise();

  expect_states_identical(serial, fs, 2, 0);
  EXPECT_EQ(stats.pass1_nets_fixed, serial_stats.pass1_nets_fixed);
  EXPECT_EQ(stats.pass1_gave_up, serial_stats.pass1_gave_up);
  EXPECT_GT(stats.spec_attempted, 0);

  // And the adaptive run repeats its counter trajectory exactly.
  gsino::FlowState again = session.state(gsino::FlowKind::kGsino);
  gsino::RefineStats stats2;
  refiner.eliminate_violations(again, stats2, opt);
  EXPECT_EQ(stats.spec_attempted, stats2.spec_attempted);
  EXPECT_EQ(stats.spec_committed, stats2.spec_committed);
  EXPECT_EQ(stats.spec_replayed, stats2.spec_replayed);
}

}  // namespace
}  // namespace rlcr
