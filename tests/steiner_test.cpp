#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "grid/region_grid.h"
#include "router/id_router.h"
#include "router/route_types.h"
#include "rsmt/steiner.h"
#include "sino/nss.h"
#include "steiner/tree_builder.h"
#include "steiner/tree_cache.h"
#include "util/rng.h"

namespace rlcr::steiner {
namespace {

using geom::Point;
using rsmt::Tree;

constexpr TreeProfile kAllProfiles[] = {TreeProfile::kFast,
                                        TreeProfile::kBalanced,
                                        TreeProfile::kBest};

std::vector<Point> random_pins(util::Xoshiro256& rng, std::size_t n,
                               std::int32_t spread) {
  std::vector<Point> pins;
  pins.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pins.push_back(
        Point{static_cast<std::int32_t>(
                  rng.below(static_cast<std::uint64_t>(spread))),
              static_cast<std::int32_t>(
                  rng.below(static_cast<std::uint64_t>(spread)))});
  }
  return pins;
}

/// The tree spans every pin: pins sit at nodes[0..pin_count) in input
/// order, the edge set is a spanning tree of the node set.
void expect_spans(const Tree& t, const std::vector<Point>& pins) {
  ASSERT_EQ(t.pin_count, pins.size());
  ASSERT_GE(t.nodes.size(), pins.size());
  for (std::size_t i = 0; i < pins.size(); ++i) {
    EXPECT_EQ(t.nodes[i], pins[i]) << "pin " << i << " moved";
  }
  if (pins.size() >= 2) {
    EXPECT_TRUE(t.is_tree());
  }
}

bool same_tree(const Tree& a, const Tree& b) {
  return a.pin_count == b.pin_count && a.nodes == b.nodes && a.edges == b.edges;
}

TEST(TreeProfileNames, AreStable) {
  EXPECT_STREQ(profile_name(TreeProfile::kFast), "fast");
  EXPECT_STREQ(profile_name(TreeProfile::kBalanced), "balanced");
  EXPECT_STREQ(profile_name(TreeProfile::kBest), "best");
  EXPECT_EQ(static_cast<int>(TreeProfile::kFast), 0);
  EXPECT_EQ(static_cast<int>(TreeProfile::kBest), kTreeProfileCount - 1);
}

// kFast is the historical path: bit-identical to a direct rsmt::rsmt()
// call (node list, edge list, pin count), with and without the cache.
// This is the contract every pre-existing route-hash golden rests on.
TEST(TreeBuilderFast, BitIdenticalToRsmt) {
  util::Xoshiro256 rng(101);
  const TreeBuilderOptions opts;
  TreeCache cache;
  const TreeBuilder direct(opts);
  const TreeBuilder cached(opts, &cache);
  for (int iter = 0; iter < 60; ++iter) {
    const auto pins = random_pins(rng, 2 + rng.below(12), 30);
    const Tree want = rsmt::rsmt(pins, opts.steiner);
    EXPECT_TRUE(same_tree(*direct.build(pins, TreeProfile::kFast), want));
    EXPECT_TRUE(same_tree(*cached.build(pins, TreeProfile::kFast), want));
  }
}

// Degenerate pin sets every profile must survive: empty, singleton,
// two-pin, duplicated pins, and collinear runs.
TEST(TreeBuilderDegenerate, EmptyAndSingleton) {
  for (const TreeProfile p : kAllProfiles) {
    const Tree empty = build_tree(std::vector<Point>{}, p, {});
    EXPECT_TRUE(empty.edges.empty()) << profile_name(p);
    const Tree one = build_tree(std::vector<Point>{{7, 3}}, p, {});
    EXPECT_EQ(one.length(), 0) << profile_name(p);
    EXPECT_TRUE(one.edges.empty()) << profile_name(p);
  }
}

TEST(TreeBuilderDegenerate, TwoPins) {
  const std::vector<Point> pins{{1, 2}, {4, 6}};
  for (const TreeProfile p : kAllProfiles) {
    const Tree t = build_tree(pins, p, {});
    expect_spans(t, pins);
    EXPECT_EQ(t.length(), 7) << profile_name(p);
  }
}

TEST(TreeBuilderDegenerate, DuplicatePinsAreFree) {
  const std::vector<Point> pins{{2, 2}, {2, 2}, {5, 2}, {2, 2}};
  for (const TreeProfile p : kAllProfiles) {
    const Tree t = build_tree(pins, p, {});
    expect_spans(t, pins);
    EXPECT_EQ(t.length(), 3) << profile_name(p);
  }
}

TEST(TreeBuilderDegenerate, CollinearPinsUseTheLine) {
  const std::vector<Point> pins{{0, 4}, {9, 4}, {3, 4}, {6, 4}};
  for (const TreeProfile p : kAllProfiles) {
    const Tree t = build_tree(pins, p, {});
    expect_spans(t, pins);
    EXPECT_EQ(t.length(), 9) << profile_name(p);
  }
}

// The quality ladder: every profile spans the pins and the tiers are
// ordered len(kBest) <= len(kBalanced) <= len(kFast) on a seeded corpus.
// kBalanced applies only length-non-increasing moves to the kFast tree;
// kBest keeps the kBalanced tree as candidate 0. The corpus deliberately
// crosses max_pins_exact (16): below it kFast's iterated 1-Steiner is
// already locally optimal and the tiers usually coincide; above it kFast
// degrades to plain RMST and the higher tiers recover the Steiner gain.
TEST(TreeBuilderQuality, ProfileOrderingOnRandomCorpus) {
  util::Xoshiro256 rng(7);
  std::int64_t fast_total = 0;
  std::int64_t balanced_total = 0;
  std::int64_t best_total = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const auto pins = random_pins(rng, 3 + rng.below(24), 24);
    std::int64_t len[3] = {};
    for (const TreeProfile p : kAllProfiles) {
      const Tree t = build_tree(pins, p, {});
      expect_spans(t, pins);
      len[static_cast<int>(p)] = t.length();
    }
    EXPECT_LE(len[1], len[0]) << "iter " << iter;
    EXPECT_LE(len[2], len[1]) << "iter " << iter;
    fast_total += len[0];
    balanced_total += len[1];
    best_total += len[2];
  }
  // The ladder is not vacuous: the higher tiers win somewhere on the corpus.
  EXPECT_LT(balanced_total, fast_total);
  EXPECT_LE(best_total, balanced_total);
}

// Translation equivariance: build(pins + t) == build(pins) + t, node for
// node and edge for edge. This is the soundness contract the cache's
// translate-to-origin keying depends on (see tree_cache.h).
TEST(TreeBuilderQuality, TranslationEquivariance) {
  util::Xoshiro256 rng(13);
  for (const TreeProfile p : kAllProfiles) {
    for (int iter = 0; iter < 20; ++iter) {
      const auto pins = random_pins(rng, 3 + rng.below(8), 20);
      const std::int32_t dx = static_cast<std::int32_t>(rng.below(100)) - 50;
      const std::int32_t dy = static_cast<std::int32_t>(rng.below(100)) - 50;
      std::vector<Point> moved = pins;
      for (Point& q : moved) {
        q.x += dx;
        q.y += dy;
      }
      Tree base = build_tree(pins, p, {});
      const Tree shifted = build_tree(moved, p, {});
      for (Point& q : base.nodes) {
        q.x += dx;
        q.y += dy;
      }
      EXPECT_TRUE(same_tree(base, shifted))
          << profile_name(p) << " iter " << iter;
    }
  }
}

// The cache is transparent: cached results equal direct builds (after the
// translate-back), across profiles, and repeated/translated queries hit.
TEST(TreeCacheBehavior, TransparentAndCountsHits) {
  util::Xoshiro256 rng(29);
  TreeCache cache;
  const TreeBuilder cached({}, &cache);
  const TreeBuilder direct{TreeBuilderOptions{}};
  for (const TreeProfile p : kAllProfiles) {
    for (int iter = 0; iter < 15; ++iter) {
      const auto pins = random_pins(rng, 3 + rng.below(7), 16);
      EXPECT_TRUE(same_tree(*cached.build(pins, p), *direct.build(pins, p)))
          << profile_name(p) << " iter " << iter;
    }
  }
  const TreeCache::Stats cold = cache.stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, cold.entries);

  // Identical and translated re-queries are hits that rebuild nothing.
  const std::vector<Point> pins{{3, 1}, {9, 5}, {5, 8}};
  std::vector<Point> far = pins;
  for (Point& q : far) {
    q.x += 1000;
    q.y += 2000;
  }
  for (const TreeProfile p : kAllProfiles) {
    const auto a = cached.build(pins, p);
    const TreeCache::Stats after_miss = cache.stats();
    const auto b = cached.build(pins, p);
    auto c = std::make_shared<Tree>(*cached.build(far, p));
    EXPECT_EQ(cache.stats().hits, after_miss.hits + 2u) << profile_name(p);
    EXPECT_TRUE(same_tree(*a, *b)) << profile_name(p);
    for (Point& q : c->nodes) {
      q.x -= 1000;
      q.y -= 2000;
    }
    EXPECT_TRUE(same_tree(*a, *c)) << profile_name(p);
  }
}

TEST(TreeCacheBehavior, DistinguishesProfilesAndOptions) {
  TreeCache cache;
  const std::vector<Point> pins{{0, 0}, {6, 0}, {3, 5}, {1, 4}};
  const TreeBuilder b1({}, &cache);
  TreeBuilderOptions o2;
  o2.seed = 99;
  const TreeBuilder b2(o2, &cache);
  (void)b1.build(pins, TreeProfile::kFast);
  (void)b1.build(pins, TreeProfile::kBest);
  (void)b2.build(pins, TreeProfile::kBest);  // same pins, different seed
  const TreeCache::Stats s = cache.stats();
  EXPECT_EQ(s.entries, 3u);
  EXPECT_EQ(s.hits, 0u);
}

// ------------------------------------------------ router-level wiring

grid::RegionGrid make_grid(std::int32_t cols = 12, std::int32_t rows = 12) {
  grid::RegionGridSpec s;
  s.cols = cols;
  s.rows = rows;
  s.region_w_um = 20.0;
  s.region_h_um = 25.0;
  s.h_capacity = 8;
  s.v_capacity = 8;
  return grid::RegionGrid(s);
}

/// Random nets whose degrees straddle max_pins_exact (16): small nets keep
/// the profiles honest about bit-identity, big ones give the higher tiers
/// real RMST-fallback topology to improve.
std::vector<router::RouterNet> random_nets(const grid::RegionGrid& g,
                                           std::size_t count,
                                           std::uint64_t seed,
                                           std::size_t degree_spread = 4) {
  util::Xoshiro256 rng(seed);
  std::vector<router::RouterNet> nets(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
    const std::size_t degree = 2 + rng.below(degree_spread);
    for (std::size_t p = 0; p < degree; ++p) {
      const Point pt{static_cast<std::int32_t>(
                         rng.below(static_cast<std::uint64_t>(g.cols()))),
                     static_cast<std::int32_t>(
                         rng.below(static_cast<std::uint64_t>(g.rows())))};
      if (std::find(nets[i].pins.begin(), nets[i].pins.end(), pt) ==
          nets[i].pins.end()) {
        nets[i].pins.push_back(pt);
      }
    }
    if (nets[i].pins.size() < 2) {
      nets[i].pins.push_back(Point{(nets[i].pins[0].x + 1) % g.cols(),
                                   nets[i].pins[0].y});
    }
  }
  return nets;
}

// Routed results for the non-fast tiers are bit-identical across thread
// counts: tree construction happens inside the deterministic ordered
// Pass B fan-out and every profile is a pure function of the pin set.
TEST(SteinerRouting, ProfilesAreThreadCountInvariant) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const auto nets = random_nets(g, 90, 17, /*degree_spread=*/24);
  for (const TreeProfile p :
       {TreeProfile::kBalanced, TreeProfile::kBest}) {
    std::uint64_t reference = 0;
    for (const int threads : {1, 2, 8}) {
      router::IdRouterOptions opt;
      opt.tree_profile = p;
      opt.threads = threads;
      const router::RoutingResult res =
          router::IdRouter(g, nss, opt).route(nets);
      const std::uint64_t h = router::route_hash(res);
      if (threads == 1) {
        reference = h;
      } else {
        EXPECT_EQ(h, reference)
            << profile_name(p) << " at threads=" << threads;
      }
    }
  }
}

// A blanket per-net override to kBalanced routes exactly like the global
// kBalanced profile; an override on a single net changes only that much.
TEST(SteinerRouting, PerNetOverridesMatchGlobalProfile) {
  const grid::RegionGrid g = make_grid();
  const sino::NssModel nss;
  const auto nets = random_nets(g, 60, 23, /*degree_spread=*/24);

  router::IdRouterOptions global_opt;
  global_opt.tree_profile = TreeProfile::kBalanced;
  const std::uint64_t global_hash = router::route_hash(
      router::IdRouter(g, nss, global_opt).route(nets));

  router::IdRouterOptions override_opt;  // global default stays kFast
  for (const auto& n : nets) {
    override_opt.tree_profile_overrides.emplace_back(
        n.id, static_cast<std::uint8_t>(TreeProfile::kBalanced));
  }
  const std::uint64_t override_hash = router::route_hash(
      router::IdRouter(g, nss, override_opt).route(nets));
  EXPECT_EQ(override_hash, global_hash);

  const std::uint64_t fast_hash = router::route_hash(
      router::IdRouter(g, nss).route(nets));
  EXPECT_NE(override_hash, fast_hash);
}

// rsmt_fallback_nets counts exactly the nets whose pin count exceeds
// max_pins_exact (the 1-Steiner -> RMST fallback inside rsmt::rsmt),
// independent of profile or thread count.
TEST(SteinerRouting, FallbackCounterPinsExceedingExactCap) {
  const grid::RegionGrid g = make_grid(24, 24);
  const sino::NssModel nss;
  std::vector<router::RouterNet> nets(3);
  const rsmt::SteinerOptions defaults;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    nets[i].id = static_cast<std::int32_t>(i);
    nets[i].si = 0.3;
  }
  // Net 0: one pin over the exact cap. Nets 1, 2: comfortably under.
  for (std::size_t p = 0; p <= defaults.max_pins_exact; ++p) {
    nets[0].pins.push_back(Point{static_cast<std::int32_t>(p),
                                 static_cast<std::int32_t>((p * 5) % 24)});
  }
  nets[1].pins = {{0, 0}, {5, 5}};
  nets[2].pins = {{10, 1}, {12, 8}, {15, 3}};

  for (const TreeProfile p : kAllProfiles) {
    router::IdRouterOptions opt;
    opt.tree_profile = p;
    const router::RoutingResult res =
        router::IdRouter(g, nss, opt).route(nets);
    EXPECT_EQ(res.stats.rsmt_fallback_nets, 1u) << profile_name(p);
  }
}

}  // namespace
}  // namespace rlcr::steiner
