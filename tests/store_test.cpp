// The persistent artifact store (src/store): serialization round-trip
// bit-identity for all four artifact types, rejection of version-mismatch
// / truncated / corrupted records, cross-process warm-start through a
// shared store directory (stage counters prove Phase I was skipped), LRU
// eviction under a size budget, the bounded in-memory session caches, and
// concurrent sessions sharing one store (exercised by the TSan CI job).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/session.h"
#include "store/artifact_store.h"
#include "store/serial.h"
#include "util/file_lock.h"

#include "golden_util.h"

namespace rlcr::gsino {
namespace {

namespace fs = std::filesystem;

/// Same 400-net, 12x12 configuration as session_test's Pipeline, so store
/// behavior is measured on the exact workload whose goldens are pinned.
struct Pipeline {
  netlist::SyntheticSpec spec;
  netlist::Netlist design;
  GsinoParams params;

  explicit Pipeline(double rate, std::size_t nets = 400, std::uint64_t seed = 12)
      : spec(netlist::tiny_spec(nets, seed)) {
    spec.grid_cols = 12;
    spec.grid_rows = 12;
    spec.chip_w_um = 600.0;
    spec.chip_h_um = 600.0;
    spec.h_capacity = 12;
    spec.v_capacity = 12;
    spec.local_sigma_regions = 2.0;
    design = netlist::generate(spec);
    params.sensitivity_rate = rate;
  }

  RoutingProblem problem() const { return make_problem(design, spec, params); }
};

/// Fresh per-test store directory under the gtest temp dir.
fs::path store_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / "rlcr_store" / name;
  fs::remove_all(dir);
  return dir;
}

void expect_routing_equal(const RoutingArtifact& a, const RoutingArtifact& b,
                          const RoutingProblem& p) {
  EXPECT_EQ(router::route_hash(*a.routing), router::route_hash(*b.routing));
  EXPECT_EQ(a.routing->total_wirelength_um, b.routing->total_wirelength_um);
  EXPECT_EQ(a.routing->stats.edges_initial, b.routing->stats.edges_initial);
  EXPECT_EQ(a.routing->stats.edges_deleted, b.routing->stats.edges_deleted);
  EXPECT_EQ(a.routing->stats.prerouted_nets, b.routing->stats.prerouted_nets);
  EXPECT_TRUE(a.options.same_routing_profile(b.options));
  EXPECT_EQ(a.seed, b.seed);
  ASSERT_EQ(a.critical_path_um->size(), b.critical_path_um->size());
  for (std::size_t n = 0; n < a.critical_path_um->size(); ++n) {
    EXPECT_EQ((*a.critical_path_um)[n], (*b.critical_path_um)[n]);
  }
  const std::size_t regions = p.grid().region_count();
  for (std::size_t r = 0; r < regions; ++r) {
    for (const grid::Dir d : grid::kBothDirs) {
      EXPECT_EQ(a.segments->segments(r, d), b.segments->segments(r, d));
      for (std::size_t n = 0; n < p.net_count(); ++n) {
        EXPECT_EQ(a.paths->length_um(n, r, d), b.paths->length_um(n, r, d));
      }
    }
  }
}

// ----------------------------------------------------- round-trip fidelity

TEST(StoreSerial, RoutingRoundTripIsBitIdentical) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  const auto art = session.route(FlowKind::kGsino);

  const std::vector<std::uint8_t> bytes = store::save(*art);
  const auto loaded = store::load_routing(bytes, p);
  ASSERT_NE(loaded, nullptr);
  expect_routing_equal(*art, *loaded, p);
  EXPECT_EQ(loaded->seconds, art->seconds);
}

// The routing profile extension (format v3): tree_profile and the per-net
// override list survive the round trip and participate in profile
// identity, so a kBalanced artifact can never be mistaken for a kFast one.
TEST(StoreSerial, RoutingRoundTripCarriesTreeProfile) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  router::IdRouterOptions opt = session.router_profile(FlowKind::kGsino);
  opt.tree_profile = steiner::TreeProfile::kBalanced;
  opt.tree_profile_overrides = {{3, 2}, {17, 0}};
  const auto art = session.route(opt, FlowKind::kGsino);

  const auto loaded = store::load_routing(store::save(*art), p);
  ASSERT_NE(loaded, nullptr);
  expect_routing_equal(*art, *loaded, p);
  EXPECT_EQ(loaded->options.tree_profile, steiner::TreeProfile::kBalanced);
  ASSERT_EQ(loaded->options.tree_profile_overrides.size(), 2u);
  EXPECT_EQ(loaded->options.tree_profile_overrides[0],
            (std::pair<std::int32_t, std::uint8_t>{3, 2}));
  EXPECT_EQ(loaded->routing->stats.rsmt_fallback_nets,
            art->routing->stats.rsmt_fallback_nets);
  EXPECT_FALSE(loaded->options.same_routing_profile(
      session.router_profile(FlowKind::kGsino)));
}

TEST(StoreSerial, BudgetRoundTripIsBitIdenticalForEveryRule) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  for (const FlowKind kind :
       {FlowKind::kIdNo, FlowKind::kIsino, FlowKind::kGsino}) {
    const auto phase1 = session.route(kind);
    const auto art = session.budget(kind, phase1, 0.15, 0.9);
    const auto loaded = store::load_budget(store::save(*art), p);
    ASSERT_NE(loaded, nullptr) << flow_name(kind);
    EXPECT_EQ(loaded->rule, art->rule);
    EXPECT_EQ(loaded->bound_v, art->bound_v);
    EXPECT_EQ(loaded->margin, art->margin);
    ASSERT_EQ(loaded->kth->size(), art->kth->size());
    for (std::size_t n = 0; n < art->kth->size(); ++n) {
      EXPECT_EQ((*loaded->kth)[n], (*art->kth)[n]) << flow_name(kind) << " " << n;
    }
  }
}

TEST(StoreSerial, RegionSolveRoundTripIsBitIdentical) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  const auto phase1 = session.route(FlowKind::kGsino);
  const auto budget = session.budget(FlowKind::kGsino, phase1, 0.15, 1.0);
  const auto art =
      session.solve_regions(FlowKind::kGsino, phase1, budget, false);

  const auto loaded =
      store::load_region_solve(store::save(*art), p, phase1, budget);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->kind, art->kind);
  EXPECT_EQ(loaded->annealed, art->annealed);
  EXPECT_EQ(loaded->violating, art->violating);
  EXPECT_EQ(loaded->phase1.get(), phase1.get());
  EXPECT_EQ(loaded->budget.get(), budget.get());

  ASSERT_EQ(loaded->solutions->size(), art->solutions->size());
  for (std::size_t si = 0; si < art->solutions->size(); ++si) {
    const RegionSolution& x = (*art->solutions)[si];
    const RegionSolution& y = (*loaded->solutions)[si];
    ASSERT_EQ(x.net_index, y.net_index) << "sol " << si;
    EXPECT_EQ(x.len_mm, y.len_mm);
    EXPECT_EQ(x.path_len_mm, y.path_len_mm);
    EXPECT_EQ(x.slots, y.slots);
    EXPECT_EQ(x.ki, y.ki);
    ASSERT_EQ(x.instance.net_count(), y.instance.net_count());
    for (std::size_t i = 0; i < x.instance.net_count(); ++i) {
      EXPECT_EQ(x.instance.net(i).net_id, y.instance.net(i).net_id);
      EXPECT_EQ(x.instance.net(i).si, y.instance.net(i).si);
      EXPECT_EQ(x.instance.net(i).kth, y.instance.net(i).kth);
      for (std::size_t j = 0; j < x.instance.net_count(); ++j) {
        EXPECT_EQ(x.instance.sensitive(i, j), y.instance.sensitive(i, j));
      }
    }
  }
  EXPECT_EQ(*art->net_lsk, *loaded->net_lsk);
  EXPECT_EQ(*art->net_noise, *loaded->net_noise);
  for (std::size_t r = 0; r < p.grid().region_count(); ++r) {
    for (const grid::Dir d : grid::kBothDirs) {
      EXPECT_EQ(art->congestion->segments(r, d),
                loaded->congestion->segments(r, d));
      EXPECT_EQ(art->congestion->shields(r, d),
                loaded->congestion->shields(r, d));
    }
  }
}

TEST(StoreSerial, RefineRoundTripIsBitIdentical) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  const auto phase1 = session.route(FlowKind::kGsino);
  const auto budget = session.budget(FlowKind::kGsino, phase1, 0.15, 1.0);
  const auto solve =
      session.solve_regions(FlowKind::kGsino, phase1, budget, false);
  const auto art = session.refine(solve);

  const std::vector<std::uint8_t> bytes = store::save(*art, false);
  const auto loaded = store::load_refine(bytes, p, solve, false);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->base.get(), solve.get());
  EXPECT_EQ(loaded->violating, art->violating);
  EXPECT_EQ(loaded->unfixable, art->unfixable);
  EXPECT_EQ(loaded->seconds, art->seconds);
  EXPECT_EQ(loaded->stats.pass1_nets_fixed, art->stats.pass1_nets_fixed);
  EXPECT_EQ(loaded->stats.pass1_resolves, art->stats.pass1_resolves);
  EXPECT_EQ(loaded->stats.pass1_gave_up, art->stats.pass1_gave_up);
  EXPECT_EQ(loaded->stats.pass2_shields_removed,
            art->stats.pass2_shields_removed);
  EXPECT_EQ(loaded->stats.pass2_accepted, art->stats.pass2_accepted);
  EXPECT_EQ(loaded->stats.pass2_rejected, art->stats.pass2_rejected);
  EXPECT_EQ(*loaded->net_lsk, *art->net_lsk);
  EXPECT_EQ(*loaded->net_noise, *art->net_noise);
  ASSERT_EQ(loaded->solutions->size(), art->solutions->size());
  for (std::size_t si = 0; si < art->solutions->size(); ++si) {
    const RegionSolution& x = (*art->solutions)[si];
    const RegionSolution& y = (*loaded->solutions)[si];
    ASSERT_EQ(x.net_index, y.net_index) << "sol " << si;
    EXPECT_EQ(x.slots, y.slots);
    EXPECT_EQ(x.ki, y.ki);
  }
  for (std::size_t r = 0; r < p.grid().region_count(); ++r) {
    for (const grid::Dir d : grid::kBothDirs) {
      EXPECT_EQ(art->congestion->segments(r, d),
                loaded->congestion->segments(r, d));
      EXPECT_EQ(art->congestion->shields(r, d),
                loaded->congestion->shields(r, d));
    }
  }

  // The record is pinned to its Phase III configuration: loading it under
  // the other batch_pass2 setting is a miss, not a wrong answer.
  EXPECT_EQ(store::load_refine(bytes, p, solve, true), nullptr);
}

// ------------------------------------------------------- rejection paths

TEST(StoreSerial, VersionMismatchIsRejected) {
  const Pipeline pipe(0.3, 100);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  std::vector<std::uint8_t> bytes = store::save(*session.route(FlowKind::kGsino));
  bytes[8] ^= 0x01;  // version field (u32 LE at offset 8)
  EXPECT_EQ(store::load_routing(bytes, p), nullptr);
}

TEST(StoreSerial, WrongArtifactTypeIsRejected) {
  const Pipeline pipe(0.3, 100);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  const auto phase1 = session.route(FlowKind::kGsino);
  const std::vector<std::uint8_t> routing_bytes = store::save(*phase1);
  EXPECT_EQ(store::load_budget(routing_bytes, p), nullptr);
  const auto budget = session.budget(FlowKind::kGsino, phase1, 0.15, 1.0);
  EXPECT_EQ(store::load_routing(store::save(*budget), p), nullptr);
}

TEST(StoreSerial, TruncatedRecordIsRejected) {
  const Pipeline pipe(0.3, 100);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  const std::vector<std::uint8_t> bytes =
      store::save(*session.route(FlowKind::kGsino));
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, std::size_t{24}, bytes.size() / 2,
        bytes.size() - 1}) {
    std::vector<std::uint8_t> cut(bytes.begin(),
                                  bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_EQ(store::load_routing(cut, p), nullptr) << "kept " << keep;
  }
}

TEST(StoreSerial, CorruptedPayloadFailsChecksum) {
  const Pipeline pipe(0.3, 100);
  const RoutingProblem p = pipe.problem();
  FlowSession session(p);
  std::vector<std::uint8_t> bytes = store::save(*session.route(FlowKind::kGsino));
  bytes[bytes.size() / 2] ^= 0xFF;  // mid-payload flip
  EXPECT_EQ(store::load_routing(bytes, p), nullptr);
}

TEST(StoreSerial, RecordForDifferentProblemIsRejected) {
  const Pipeline small(0.3, 100);
  const RoutingProblem p_small = small.problem();
  FlowSession session(p_small);
  const std::vector<std::uint8_t> bytes =
      store::save(*session.route(FlowKind::kGsino));
  // A problem with a different net count cannot accept the record.
  const Pipeline other(0.3, 120);
  const RoutingProblem p_other = other.problem();
  EXPECT_EQ(store::load_routing(bytes, p_other), nullptr);
  EXPECT_EQ(store::load_budget(bytes, p_other), nullptr);
}

// ------------------------------------------------- cross-process warm start

TEST(ArtifactStore, WarmStartsAFreshSessionWithPhaseISkipped) {
  const fs::path dir = store_dir("warm_start");

  // "Process" one: compute and publish.
  FlowResult cold;
  {
    const Pipeline pipe(0.5);
    const RoutingProblem p = pipe.problem();
    SessionOptions sopt;
    sopt.store = std::make_shared<store::ArtifactStore>(dir);
    FlowSession session(p, std::move(sopt));
    cold = session.run(FlowKind::kGsino);
    EXPECT_EQ(session.counters().route_executed, 1u);
    EXPECT_EQ(session.counters().route_loaded, 0u);
  }

  // "Process" two: fresh problem object, fresh session, fresh store handle
  // on the same directory — only the bytes on disk are shared.
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  SessionOptions sopt;
  sopt.store = std::make_shared<store::ArtifactStore>(dir);
  FlowSession session(p, std::move(sopt));
  const FlowResult warm = session.run(FlowKind::kGsino);

  // Stage counters prove Phase I, budgeting, and the Phase II region
  // solve never executed — the warm session replays entirely from disk.
  EXPECT_EQ(session.counters().route_executed, 0u);
  EXPECT_EQ(session.counters().route_loaded, 1u);
  EXPECT_EQ(session.counters().budget_executed, 0u);
  EXPECT_EQ(session.counters().budget_loaded, 1u);
  EXPECT_EQ(session.counters().solve_executed, 0u);
  EXPECT_EQ(session.counters().solve_loaded, 1u);
  EXPECT_EQ(session.counters().refine_executed, 0u);
  EXPECT_EQ(session.counters().refine_loaded, 1u);

  // And the result is bit-identical to the cold run.
  EXPECT_EQ(router::route_hash(warm.routing()), router::route_hash(cold.routing()));
  EXPECT_EQ(warm.total_wirelength_um, cold.total_wirelength_um);
  EXPECT_EQ(warm.total_shields, cold.total_shields);
  EXPECT_EQ(warm.violating, cold.violating);
  EXPECT_EQ(warm.unfixable, cold.unfixable);
  EXPECT_EQ(warm.area.width_um, cold.area.width_um);
  EXPECT_EQ(warm.area.height_um, cold.area.height_um);
  ASSERT_EQ(warm.net_lsk().size(), cold.net_lsk().size());
  for (std::size_t n = 0; n < warm.net_lsk().size(); ++n) {
    EXPECT_EQ(warm.net_lsk()[n], cold.net_lsk()[n]) << "net " << n;
    EXPECT_EQ(warm.net_noise()[n], cold.net_noise()[n]) << "net " << n;
  }
  for (std::size_t n = 0; n < warm.kth().size(); ++n) {
    EXPECT_EQ(warm.kth()[n], cold.kth()[n]) << "net " << n;
  }
}

TEST(ArtifactStore, RegionSolveRecordsRoundTripThroughTheStore) {
  // The typed region-solve layer (solve_key + put/get_region_solve) is
  // both the session's auto-publish channel and a checkpoint API for
  // callers driving the store directly; cover the direct path here with a
  // store-less session supplying the artifacts.
  const fs::path dir = store_dir("solve_records");
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  store::ArtifactStore store(dir);

  FlowSession session(p);
  const auto phase1 = session.route(FlowKind::kGsino);
  const auto budget = session.budget(FlowKind::kGsino, phase1, 0.15, 1.0);
  const auto solve =
      session.solve_regions(FlowKind::kGsino, phase1, budget, false);

  const std::uint64_t rkey = store::routing_key(p, phase1->options);
  const std::uint64_t bkey =
      store::budget_key(p, budget->rule, 0.15, 1.0, 0);
  const std::uint64_t skey =
      store::solve_key(p, FlowKind::kGsino, false, rkey, bkey);
  EXPECT_EQ(store.get_region_solve(skey, p, phase1, budget), nullptr);
  store.put_region_solve(skey, *solve);

  const auto loaded = store.get_region_solve(skey, p, phase1, budget);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->violating, solve->violating);
  EXPECT_EQ(*loaded->net_lsk, *solve->net_lsk);
  EXPECT_EQ(*loaded->net_noise, *solve->net_noise);
  EXPECT_EQ(loaded->phase1.get(), phase1.get());
  // A different anneal setting derives a different key — no false hit.
  const std::uint64_t skey_anneal =
      store::solve_key(p, FlowKind::kGsino, true, rkey, bkey);
  EXPECT_NE(skey_anneal, skey);
  EXPECT_EQ(store.get_region_solve(skey_anneal, p, phase1, budget), nullptr);
}

TEST(ArtifactStore, DifferentSeedDoesNotHitTheStore) {
  const fs::path dir = store_dir("seed_miss");
  {
    const Pipeline pipe(0.5);
    const RoutingProblem p = pipe.problem();
    SessionOptions sopt;
    sopt.store = std::make_shared<store::ArtifactStore>(dir);
    FlowSession session(p, std::move(sopt));
    (void)session.run(FlowKind::kGsino);
  }
  Pipeline pipe(0.5);
  pipe.params.seed = 7;  // different master seed => different profile key
  const RoutingProblem p = pipe.problem();
  SessionOptions sopt;
  sopt.store = std::make_shared<store::ArtifactStore>(dir);
  FlowSession session(p, std::move(sopt));
  (void)session.run(FlowKind::kGsino);
  EXPECT_EQ(session.counters().route_loaded, 0u);
  EXPECT_EQ(session.counters().route_executed, 1u);
}

// ------------------------------------------------------------ store policy

TEST(ArtifactStore, EvictsLeastRecentlyUsedBeyondSizeBudget) {
  const fs::path dir = store_dir("lru");
  store::StoreOptions opt;
  opt.max_bytes = 3 * 1024;
  store::ArtifactStore store(dir, opt);

  const std::vector<std::uint8_t> blob(1024, 0xAB);
  for (std::uint64_t key = 1; key <= 3; ++key) {
    ASSERT_TRUE(store.put(store::ArtifactType::kRouting, key, blob));
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
  }
  EXPECT_EQ(store.stats().evictions, 0u);

  // Touch key 1 so key 2 becomes the LRU record, then overflow the budget.
  ASSERT_TRUE(store.get(store::ArtifactType::kRouting, 1).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(store.put(store::ArtifactType::kRouting, 4, blob));

  EXPECT_GE(store.stats().evictions, 1u);
  EXPECT_LE(store.bytes_on_disk(), opt.max_bytes);
  EXPECT_FALSE(store.get(store::ArtifactType::kRouting, 2).has_value());
  EXPECT_TRUE(store.get(store::ArtifactType::kRouting, 1).has_value());
  EXPECT_TRUE(store.get(store::ArtifactType::kRouting, 4).has_value());
}

TEST(ArtifactStore, EvictionContendsOnTheAdvisoryDirLock) {
  // flock is per open file description, so an external FileLock on the
  // store's .lock file contends with the store's own even in-process —
  // which makes the cross-process eviction serialization deterministic to
  // test: hold the lock, trigger an over-budget put, watch it block, then
  // release and watch the sweep finish with lock_waits counted.
  const fs::path dir = store_dir("dirlock");
  store::StoreOptions opt;
  opt.max_bytes = 2 * 1024 + 512;  // two records fit, the third overflows
  store::ArtifactStore store(dir, opt);

  const std::vector<std::uint8_t> blob(1024, 0x5C);
  ASSERT_TRUE(store.put(store::ArtifactType::kRouting, 1, blob));
  ASSERT_TRUE(store.put(store::ArtifactType::kRouting, 2, blob));
  EXPECT_EQ(store.stats().lock_waits, 0u);  // under budget: no contention

  util::FileLock external(dir / ".lock");
  ASSERT_TRUE(external.valid());
  ASSERT_TRUE(external.try_lock());
  ASSERT_TRUE(external.held());

  std::atomic<bool> done{false};
  std::thread sweeper([&] {
    // Over budget: the eviction sweep must wait for the external holder.
    EXPECT_TRUE(store.put(store::ArtifactType::kRouting, 3, blob));
    done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(done.load()) << "eviction swept while the dir lock was held";
  external.unlock();
  sweeper.join();
  EXPECT_TRUE(done.load());

  const store::StoreStats stats = store.stats();
  EXPECT_GE(stats.lock_waits, 1u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(store.bytes_on_disk(), opt.max_bytes);
}

TEST(FileLock, SecondInstanceContendsAndInvalidPathDegrades) {
  const fs::path dir = store_dir("filelock");
  fs::create_directories(dir);
  util::FileLock a(dir / "l");
  util::FileLock b(dir / "l");
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_TRUE(a.try_lock());
  EXPECT_FALSE(b.try_lock()) << "distinct descriptions must contend";
  a.unlock();
  EXPECT_TRUE(b.try_lock());
  b.unlock();

  // Unopenable lock path: every operation is a no-op that reports success
  // (cache-layer degradation must never fail the computation).
  util::FileLock broken("/proc/definitely/not/writable/l");
  EXPECT_FALSE(broken.valid());
  EXPECT_TRUE(broken.try_lock());
  broken.lock();
  broken.unlock();
}

TEST(ArtifactStore, UnusableDirectoryFailsLoudlyAtConstruction) {
  // A misconfigured store path must not silently degrade every run into a
  // cold start.
  EXPECT_THROW(store::ArtifactStore("/proc/definitely/not/writable"),
               std::runtime_error);
}

TEST(ArtifactStore, CorruptRecordOnDiskIsRejectedRemovedAndRecomputed) {
  const fs::path dir = store_dir("corrupt");
  const Pipeline pipe(0.3, 100);
  const RoutingProblem p = pipe.problem();
  auto store = std::make_shared<store::ArtifactStore>(dir);
  const std::uint64_t key = store::routing_key(p, p.params().router);
  {
    FlowSession session(p, SessionOptions{.store = store});
    (void)session.route(p.params().router, FlowKind::kGsino);
  }

  // Flip one payload byte of the record on disk.
  fs::path record;
  for (const auto& entry : fs::directory_iterator(dir)) record = entry.path();
  ASSERT_FALSE(record.empty());
  {
    std::fstream f(record, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(64);
    const char x = static_cast<char>(0xFF);
    f.write(&x, 1);
  }

  EXPECT_EQ(store->get_routing(key, p), nullptr);
  EXPECT_EQ(store->stats().rejected, 1u);
  EXPECT_FALSE(fs::exists(record));  // dropped, slot free for republish

  // A session consulting the store simply recomputes and republishes.
  FlowSession session(p, SessionOptions{.store = store});
  (void)session.route(p.params().router, FlowKind::kGsino);
  EXPECT_EQ(session.counters().route_executed, 1u);
  EXPECT_NE(store->get_routing(key, p), nullptr);
}

// ------------------------------------------------- bounded session caches

TEST(Session, InMemoryCachesAreBoundedLruAndStayCorrect) {
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();

  SessionOptions bounded;
  bounded.cache_entries = 1;
  FlowSession session(p, std::move(bounded));

  Scenario s15, s18;
  s15.bound_v = 0.15;
  s18.bound_v = 0.18;
  const FlowResult first = session.run(FlowKind::kGsino, s15);
  (void)session.run(FlowKind::kGsino, s18);
  const FlowResult again = session.run(FlowKind::kGsino, s15);

  // One budget entry: the 0.18 solve evicted the 0.15 artifacts, so the
  // third run recomputes (an unbounded session computes 2, not 3)...
  EXPECT_EQ(session.counters().budget_executed, 3u);
  EXPECT_EQ(session.counters().solve_executed, 3u);
  // ...while the routing profile is unchanged and stays cached throughout.
  EXPECT_EQ(session.counters().route_executed, 1u);

  // Eviction costs recompute time, never correctness: bit-identical rerun.
  EXPECT_EQ(again.total_shields, first.total_shields);
  EXPECT_EQ(again.violating, first.violating);
  ASSERT_EQ(again.net_lsk().size(), first.net_lsk().size());
  for (std::size_t n = 0; n < again.net_lsk().size(); ++n) {
    EXPECT_EQ(again.net_lsk()[n], first.net_lsk()[n]) << "net " << n;
  }
}

TEST(Session, EvictedArtifactsAreServedBackByTheStore) {
  const fs::path dir = store_dir("evict_reload");
  const Pipeline pipe(0.5);
  const RoutingProblem p = pipe.problem();
  SessionOptions sopt;
  sopt.cache_entries = 1;
  sopt.store = std::make_shared<store::ArtifactStore>(dir);
  FlowSession session(p, std::move(sopt));

  Scenario s15, s18;
  s15.bound_v = 0.15;
  s18.bound_v = 0.18;
  (void)session.run(FlowKind::kGsino, s15);
  (void)session.run(FlowKind::kGsino, s18);
  (void)session.run(FlowKind::kGsino, s15);

  // The bound-0.15 budget was evicted from memory after the 0.18 run, but
  // the store serves it back instead of a recompute.
  EXPECT_EQ(session.counters().budget_executed, 2u);
  EXPECT_EQ(session.counters().budget_loaded, 1u);
  // Likewise the 0.15 region solve: solve_regions() auto-published it on
  // first compute, so the replay loads instead of re-running SINO — even
  // though the reloaded budget is a different in-memory artifact (the
  // store keys on content, the LRU cache on pointer identity).
  EXPECT_EQ(session.counters().solve_executed, 2u);
  EXPECT_EQ(session.counters().solve_loaded, 1u);
  // And the 0.15 refine artifact, published on first compute and evicted
  // with its solve entry, comes back from the store the same way.
  EXPECT_EQ(session.counters().refine_executed, 2u);
  EXPECT_EQ(session.counters().refine_loaded, 1u);
}

// ------------------------------------------------------------- concurrency

TEST(ArtifactStore, ConcurrentSessionsSharingOneStoreAgree) {
  const fs::path dir = store_dir("concurrent");
  auto store = std::make_shared<store::ArtifactStore>(dir);

  constexpr int kThreads = 4;
  std::vector<std::uint64_t> hashes(kThreads, 0);
  std::vector<std::vector<double>> lsk(kThreads);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&, t] {
        const Pipeline pipe(0.5);
        const RoutingProblem p = pipe.problem();
        SessionOptions sopt;
        sopt.store = store;
        FlowSession session(p, std::move(sopt));
        const FlowResult fr = session.run(FlowKind::kGsino);
        hashes[static_cast<std::size_t>(t)] = router::route_hash(fr.routing());
        lsk[static_cast<std::size_t>(t)] = fr.net_lsk();
      });
    }
    for (std::thread& w : workers) w.join();
  }

  // Whoever won the publish race, every session computed or loaded the
  // same bits.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(hashes[static_cast<std::size_t>(t)], hashes[0]);
    EXPECT_EQ(lsk[static_cast<std::size_t>(t)], lsk[0]);
  }
  const store::StoreStats stats = store->stats();
  EXPECT_GE(stats.stores, 1u);
  EXPECT_EQ(stats.rejected, 0u);
}

}  // namespace
}  // namespace rlcr::gsino
