#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include <limits>
#include <utility>
#include <vector>

#include "util/csv.h"
#include "util/indexed_heap.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/table_printer.h"

namespace rlcr::util {
namespace {

// ---------------------------------------------------------------- RNG

TEST(Rng, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitMixMixIsStateless) {
  EXPECT_EQ(SplitMix64::mix(123), SplitMix64::mix(123));
  EXPECT_NE(SplitMix64::mix(123), SplitMix64::mix(124));
  EXPECT_EQ(SplitMix64::mix2(1, 2), SplitMix64::mix2(1, 2));
  EXPECT_NE(SplitMix64::mix2(1, 2), SplitMix64::mix2(2, 1));
}

TEST(Rng, XoshiroSameSeedSameSequence) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, XoshiroDifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Xoshiro256 rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalHasRightMoments) {
  Xoshiro256 rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(2.0, 3.0));
  EXPECT_NEAR(mean(xs), 2.0, 0.15);
  EXPECT_NEAR(stddev(xs), 3.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Xoshiro256 rng(7);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, IdentitySolve) {
  const Matrix i3 = Matrix::identity(3);
  const LuFactor lu(i3);
  const std::vector<double> b{1.0, -2.0, 3.0};
  EXPECT_EQ(lu.solve(b), b);
}

TEST(Matrix, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3
  Matrix a(2, 2);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const LuFactor lu(a);
  const auto x = lu.solve({5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, PivotingHandlesZeroDiagonal) {
  Matrix a(2, 2);
  a(0, 0) = 0;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 0;
  const LuFactor lu(a);
  const auto x = lu.solve({3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Matrix, SingularThrows) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactor{a}, std::runtime_error);
}

TEST(Matrix, TinyScaleIsNotFlaggedSingular) {
  // MNA matrices carry femto-scale entries; the relative pivot test must
  // accept them.
  Matrix a(2, 2);
  a(0, 0) = 1e-15;
  a(0, 1) = 2e-16;
  a(1, 0) = 3e-16;
  a(1, 1) = 2e-15;
  EXPECT_NO_THROW(LuFactor{a});
}

TEST(Matrix, MultiplyAndTranspose) {
  Matrix a(2, 3);
  int v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  const Matrix at = a.transposed();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_EQ(at.cols(), 2u);
  const Matrix ata = at * a;
  EXPECT_EQ(ata.rows(), 3u);
  // (A^T A)(0,0) = 1*1 + 4*4 = 17
  EXPECT_DOUBLE_EQ(ata(0, 0), 17.0);
}

TEST(Matrix, MatVec) {
  Matrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  const auto y = a * std::vector<double>{1.0, 1.0};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, LeastSquaresRecoversLine) {
  // y = 3x + 1 with exact data.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(static_cast<std::size_t>(i), 0) = i;
    a(static_cast<std::size_t>(i), 1) = 1.0;
    b[static_cast<std::size_t>(i)] = 3.0 * i + 1.0;
  }
  const auto coef = least_squares(a, b);
  EXPECT_NEAR(coef[0], 3.0, 1e-6);
  EXPECT_NEAR(coef[1], 1.0, 1e-6);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
  EXPECT_THROW(a.add_scaled(b, 1.0), std::invalid_argument);
  EXPECT_THROW(a * std::vector<double>{1.0}, std::invalid_argument);
}

// ---------------------------------------------------------------- Stats

TEST(Stats, MeanVarStd) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantIsZero) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> c{5, 5, 5};
  EXPECT_DOUBLE_EQ(pearson(x, c), 0.0);
}

TEST(Stats, SpearmanIsRankBased) {
  // Monotone but nonlinear: rank correlation 1, linear correlation < 1.
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 1.0);
}

TEST(Stats, RanksAverageTies) {
  const auto r = ranks({10.0, 20.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, LinearFitExact) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1, 3, 5, 7};
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(Stats, EmptyInputsThrowOrDefault) {
  EXPECT_THROW(min_of({}), std::invalid_argument);
  EXPECT_THROW(max_of({}), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

// ------------------------------------------------------------ TablePrinter

TEST(TablePrinter, RendersHeaderAndRows) {
  TablePrinter t("Title");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.146), "14.60%");
  EXPECT_EQ(fmt_percent(0.3, 0), "30%");
  EXPECT_EQ(fmt_int(42), "42");
}

// ---------------------------------------------------------------- Csv

TEST(Csv, WritesAndQuotes) {
  const std::string path = testing::TempDir() + "/rlcr_csv_test.csv";
  {
    CsvWriter w(path);
    w.write_row(std::vector<std::string>{"a", "b,c", "d\"e"});
    w.write_row(std::vector<double>{1.5, 2.5});
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,\"b,c\",\"d\"\"e\"");
  EXPECT_EQ(line2, "1.5,2.5");
}

// ------------------------------------------------------- IndexedMaxHeap

TEST(IndexedMaxHeap, PopsInKeyThenIdOrder) {
  IndexedMaxHeap h(8);
  h.push(0, 1.0);
  h.push(1, 3.0);
  h.push(2, 3.0);  // equal keys: larger id wins
  h.push(3, 2.0);
  EXPECT_EQ(h.size(), 4u);
  EXPECT_EQ(h.pop(), (std::pair<std::int32_t, double>{2, 3.0}));
  EXPECT_EQ(h.pop(), (std::pair<std::int32_t, double>{1, 3.0}));
  EXPECT_EQ(h.pop(), (std::pair<std::int32_t, double>{3, 2.0}));
  EXPECT_EQ(h.pop(), (std::pair<std::int32_t, double>{0, 1.0}));
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMaxHeap, UpdateMovesBothDirections) {
  IndexedMaxHeap h(4);
  h.push(0, 5.0);
  h.push(1, 4.0);
  h.push(2, 3.0);
  h.update(0, 1.0);  // decrease the max
  EXPECT_EQ(h.top().first, 1);
  h.update(2, 9.0);  // increase from below
  EXPECT_EQ(h.top().first, 2);
  h.erase(1);
  EXPECT_EQ(h.pop().first, 2);
  EXPECT_EQ(h.pop().first, 0);
  EXPECT_TRUE(h.empty());
}

TEST(IndexedMaxHeap, BulkBuildMatchesSequentialPushes) {
  std::vector<IndexedMaxHeap::Entry> entries;
  util::Xoshiro256 rng(7);
  for (std::int32_t i = 0; i < 500; ++i) {
    entries.push_back({static_cast<double>(rng.below(50)), i});
  }
  IndexedMaxHeap bulk(entries.size()), seq(entries.size());
  bulk.build(entries);
  for (const auto& e : entries) seq.push(e.id, e.key);
  while (!bulk.empty()) {
    ASSERT_FALSE(seq.empty());
    EXPECT_EQ(bulk.pop(), seq.pop());
  }
  EXPECT_TRUE(seq.empty());
}

TEST(IndexedMaxHeap, BulkBuildHandlesTinySizes) {
  IndexedMaxHeap h(2);
  h.build({});  // must not touch an empty heap
  EXPECT_TRUE(h.empty());
  h.build({{1.5, 0}});
  EXPECT_EQ(h.pop(), (std::pair<std::int32_t, double>{0, 1.5}));
}

// -------------------------------------------------------------- Stopwatch

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch w;
  const double t0 = w.seconds();
  EXPECT_GE(t0, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(w.seconds(), t0);
  w.reset();
  EXPECT_LT(w.seconds(), 1.0);
}

}  // namespace
}  // namespace rlcr::util
