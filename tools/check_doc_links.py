#!/usr/bin/env python3
"""Docs-link check: every relative markdown link in the repo's *.md files
must resolve to an existing file or directory.

Scans tracked markdown (skipping build trees), extracts inline links and
images `[text](target)`, ignores external schemes and pure anchors, strips
`#fragment` suffixes, and resolves the rest against the linking file's
directory (or the repo root for absolute `/` paths). Exits non-zero
listing every broken link. Run from anywhere:

    python3 tools/check_doc_links.py
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SKIP_DIRS = {"build", ".git", ".claude"}

# Inline links/images; [text](target "title") also supported.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def markdown_files():
    for root, dirs, files in os.walk(REPO):
        dirs[:] = [d for d in dirs if d not in SKIP_DIRS and not d.startswith("build")]
        for name in files:
            if name.endswith(".md"):
                yield os.path.join(root, name)


def check(path):
    broken = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    # Fenced code blocks routinely hold example syntax; don't lint them.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        base = REPO if target.startswith("/") else os.path.dirname(path)
        resolved = os.path.normpath(os.path.join(base, target.lstrip("/")))
        if not os.path.exists(resolved):
            broken.append((match.group(1), resolved))
    return broken


def main():
    failures = 0
    for path in sorted(markdown_files()):
        for target, resolved in check(path):
            rel = os.path.relpath(path, REPO)
            print(f"BROKEN {rel}: ({target}) -> {os.path.relpath(resolved, REPO)}")
            failures += 1
    if failures:
        print(f"{failures} broken markdown link(s)", file=sys.stderr)
        return 1
    print("all markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
