#!/usr/bin/env python3
"""Gate the scenario-matrix entries (bench_scenarios).

Usage: check_scenarios.py BENCH.json

BENCH.json is a google-benchmark JSON export (or the merged
BENCH_router.json) holding BM_ScenarioMatrix/<class>/<kind> entries.
Checks:
  - at least one class is present, and every class that appears carries
    the complete four-kind matrix row (bound_sweep, tech_sweep,
    delta_chain, eco_slice) — a partial row is not a matrix;
  - every cell ran more than one flow (runs > 1: a campaign of one run
    has nothing to share or patch);
  - every cell records compute_avoided > 0 — the sweeps must reuse the
    shared routing artifact and the delta kinds must splice routes /
    reuse region solves; zero means the incrementality machinery
    silently degraded to full recomputes;
  - every cell records fingerprint_match == 1: each campaign's final
    state, recomputed from scratch in a fresh session, matched the
    incremental result bit for bit (the differential contract of
    tests/delta_differential_test.cpp, re-checked on every CI run).

Exit status 0 iff every check passes.
"""

import json
import sys

KINDS = ("bound_sweep", "tech_sweep", "delta_chain", "eco_slice")


def fail(msg: str) -> None:
    print(f"check_scenarios: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str]) -> None:
    if len(argv) != 2:
        fail("usage: check_scenarios.py BENCH.json")
    path = argv[1]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    matrix: dict[str, dict[str, dict]] = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("name", "")
        if not name.startswith("BM_ScenarioMatrix/"):
            continue
        parts = name.split("/")
        if len(parts) < 3:
            fail(f"{path}: malformed entry name {name!r}")
        cls, kind = parts[1], parts[2]
        if kind not in KINDS:
            fail(f"{path}: unknown scenario kind in {name!r}")
        matrix.setdefault(cls, {})[kind] = entry

    if not matrix:
        fail(f"{path}: no BM_ScenarioMatrix entries")

    for cls in sorted(matrix):
        row = matrix[cls]
        missing = [k for k in KINDS if k not in row]
        if missing:
            fail(f"{path}: {cls}: matrix row incomplete, missing "
                 f"{', '.join(missing)}")

        for kind in KINDS:
            cell = row[kind]
            runs = cell.get("runs")
            if not isinstance(runs, (int, float)) or runs <= 1:
                fail(f"{path}: {cls}/{kind}: runs = {runs!r} (want > 1)")
            avoided = cell.get("compute_avoided")
            if not isinstance(avoided, (int, float)) or avoided <= 0:
                fail(f"{path}: {cls}/{kind}: compute_avoided = {avoided!r} "
                     "— the campaign recomputed everything; incrementality "
                     "is silently broken")
            if cell.get("fingerprint_match") != 1.0:
                fail(f"{path}: {cls}/{kind}: fingerprint_match != 1 — the "
                     "incremental end state diverged from the from-scratch "
                     "recompute")

        summary = " ".join(
            f"{k}:avoided={row[k].get('compute_avoided'):.0f}" for k in KINDS)
        print(f"check_scenarios: {cls}: {summary} — OK")

    print(f"check_scenarios: {path}: {len(matrix)} class(es) x "
          f"{len(KINDS)} kinds — OK")


if __name__ == "__main__":
    main(sys.argv)
