#!/usr/bin/env python3
"""Validate the what-if service's observable surface (src/service/README.md).

Usage: check_service.py SERVICE_METRICS.json [BENCH_service.json]

SERVICE_METRICS.json is the server's unified metrics registry
(`Server::metrics().write_json`, dumped by bench_service when
RLCR_SERVICE_METRICS is set). Checks the MetricsSnapshot shape
({"metrics":{name:{kind,value}}}) and pins the service.* key set the
daemon exports alongside the aggregated session.* counters, with the
gauge/counter kinds the docs promise. Sanity-checks the bookkeeping
identities that hold for any completed run: accepted + rejected never
exceeds submits (shutdown rejections carry no dedicated counter), and
coalesce hits never exceed accepted submits.

BENCH_service.json (optional) is bench_service's google-benchmark
output. Every BM_Service* entry must carry the latency/efficiency
counters (p50_ms / p99_ms / warm_hit_rate / coalesced / requests /
failures) with p50 <= p99, warm_hit_rate in [0, 1], and zero failures —
a load run that dropped requests is not a perf data point.

Exit status 0 iff every check passes.
"""

import json
import sys

SERVICE_COUNTERS = [
    "service.connections_opened", "service.submits", "service.accepted",
    "service.rejected_queue_full", "service.rejected_inflight_cap",
    "service.rejected_bad_query", "service.coalesce_hits",
    "service.jobs_executed", "service.jobs_failed", "service.cancelled",
    "service.sessions_created", "service.sessions_evicted",
    "service.session_warm_hits", "service.queue_peak",
    "service.malformed_frames",
]
SERVICE_GAUGES = [
    "service.connections_open", "service.queue_depth",
    "service.sessions_open",
]
BENCH_COUNTERS = ["p50_ms", "p99_ms", "warm_hit_rate", "coalesced",
                  "requests", "failures"]

errors = []


def check(cond: bool, msg: str) -> None:
    if not cond:
        errors.append(msg)


def load(path: str) -> dict:
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_service: {path}: {e}", file=sys.stderr)
        sys.exit(1)


def check_metrics(path: str) -> None:
    data = load(path)
    metrics = data.get("metrics")
    check(isinstance(metrics, dict) and metrics,
          f"{path}: missing or empty 'metrics' object")
    if not isinstance(metrics, dict):
        return
    for name in SERVICE_COUNTERS + SERVICE_GAUGES:
        entry = metrics.get(name)
        check(entry is not None, f"{path}: missing metric '{name}'")
        if entry is None:
            continue
        want = "gauge" if name in SERVICE_GAUGES else "counter"
        check(entry.get("kind") == want,
              f"{path}: {name} kind is '{entry.get('kind')}', want '{want}'")
        check(isinstance(entry.get("value"), (int, float))
              and entry["value"] >= 0,
              f"{path}: {name} value must be a non-negative number")

    def value(name: str) -> float:
        entry = metrics.get(name) or {}
        v = entry.get("value", 0)
        return float(v) if isinstance(v, (int, float)) else 0.0

    submits = value("service.submits")
    accepted = value("service.accepted")
    rejected = (value("service.rejected_queue_full")
                + value("service.rejected_inflight_cap")
                + value("service.rejected_bad_query"))
    # kShuttingDown rejections carry no dedicated counter, so <=.
    check(accepted + rejected <= submits,
          f"{path}: accepted ({accepted:g}) + rejected ({rejected:g}) "
          f"> submits ({submits:g})")
    check(value("service.coalesce_hits") <= accepted,
          f"{path}: more coalesce hits than accepted submits")
    # The daemon aggregates per-session stage counters; a server that
    # executed jobs must show session.* work.
    if value("service.jobs_executed") > 0:
        check(value("session.solve_requests") > 0,
              f"{path}: jobs executed but no session.* counters aggregated")


def check_bench(path: str) -> None:
    data = load(path)
    entries = [b for b in data.get("benchmarks", [])
               if b.get("name", "").startswith("BM_Service")]
    check(bool(entries), f"{path}: no BM_Service* entries")
    for b in entries:
        name = b.get("name", "?")
        for counter in BENCH_COUNTERS:
            check(isinstance(b.get(counter), (int, float)),
                  f"{path}: {name} missing counter '{counter}'")
        p50, p99 = b.get("p50_ms", 0), b.get("p99_ms", 0)
        if isinstance(p50, (int, float)) and isinstance(p99, (int, float)):
            check(0 < p50 <= p99,
                  f"{path}: {name} wants 0 < p50_ms ({p50:g}) <= "
                  f"p99_ms ({p99:g})")
        rate = b.get("warm_hit_rate", -1)
        if isinstance(rate, (int, float)):
            check(0.0 <= rate <= 1.0,
                  f"{path}: {name} warm_hit_rate {rate:g} outside [0, 1]")
        if isinstance(b.get("failures"), (int, float)):
            check(b["failures"] == 0,
                  f"{path}: {name} recorded {b['failures']:g} failed "
                  "requests — not a valid perf data point")
        if isinstance(b.get("requests"), (int, float)):
            check(b["requests"] > 0, f"{path}: {name} served no requests")


def main(argv: list[str]) -> None:
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    check_metrics(argv[1])
    if len(argv) == 3:
        check_bench(argv[2])
    if errors:
        for e in errors:
            print(f"check_service: {e}", file=sys.stderr)
        sys.exit(1)
    names = " and ".join(argv[1:])
    print(f"check_service: {names} OK")


if __name__ == "__main__":
    main(sys.argv)
