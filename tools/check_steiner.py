#!/usr/bin/env python3
"""Gate the Steiner quality ablation entries (bench_steiner).

Usage: check_steiner.py BENCH.json

BENCH.json is a google-benchmark JSON export (or the merged
BENCH_router.json) holding BM_SteinerQuality/<class>/<profile> entries.
Checks:
  - at least one class is present, and every class that appears carries
    the complete three-profile curve (fast, balanced, best) — a partial
    curve cannot support the quality->routing comparison;
  - every `fast` entry records fingerprint_match == 1: the fast tier is
    the historical tree path and its routed result must be bit-identical
    to a default-profile run (the claim the route-hash goldens rest on);
  - per class, tree lengths obey best <= balanced <= fast — kBalanced
    applies only length-non-increasing moves to the kFast tree and kBest
    keeps the kBalanced tree as a candidate, so a violation means the
    builder broke its ordering contract, not that a heuristic got lucky.

Exit status 0 iff every check passes.
"""

import json
import sys

PROFILES = ("fast", "balanced", "best")


def fail(msg: str) -> None:
    print(f"check_steiner: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv: list[str]) -> None:
    if len(argv) != 2:
        fail("usage: check_steiner.py BENCH.json")
    path = argv[1]
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    curves: dict[str, dict[str, dict]] = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("name", "")
        if not name.startswith("BM_SteinerQuality/"):
            continue
        parts = name.split("/")
        if len(parts) < 3:
            fail(f"{path}: malformed entry name {name!r}")
        cls, profile = parts[1], parts[2]
        if profile not in PROFILES:
            fail(f"{path}: unknown profile in {name!r}")
        curves.setdefault(cls, {})[profile] = entry

    if not curves:
        fail(f"{path}: no BM_SteinerQuality entries")

    for cls in sorted(curves):
        entries = curves[cls]
        missing = [p for p in PROFILES if p not in entries]
        if missing:
            fail(f"{path}: {cls}: profile curve incomplete, missing "
                 f"{', '.join(missing)}")

        fast = entries["fast"]
        if fast.get("fingerprint_match") != 1.0:
            fail(f"{path}: {cls}: fast-profile route hash does not match "
                 "the default run (fingerprint_match != 1) — the fast "
                 "tier must be bit-identical to the historical path")

        lengths = {p: entries[p].get("tree_len_total") for p in PROFILES}
        for p, v in lengths.items():
            if not isinstance(v, (int, float)):
                fail(f"{path}: {cls}/{p}: missing tree_len_total")
        if not (lengths["best"] <= lengths["balanced"] <= lengths["fast"]):
            fail(f"{path}: {cls}: tree-length ordering violated: "
                 f"best={lengths['best']} balanced={lengths['balanced']} "
                 f"fast={lengths['fast']}")
        print(f"check_steiner: {cls}: fast={lengths['fast']:.0f} "
              f"balanced={lengths['balanced']:.0f} "
              f"best={lengths['best']:.0f} — OK")

    print(f"check_steiner: {path}: {len(curves)} class(es) — OK")


if __name__ == "__main__":
    main(sys.argv)
