#!/usr/bin/env python3
"""Validate observability exports from `route_cli` (docs/OBSERVABILITY.md).

Usage: check_trace.py TRACE.json [METRICS.json]

TRACE.json is a Chrome trace-event file written by
`obs::TraceSession::write_chrome_trace` (via `route_cli --trace-out`).
Checks:
  - well-formed JSON with a non-empty `traceEvents` array;
  - at least one "M" (metadata) event naming the process/threads;
  - every "X" (complete-span) event carries name/cat/pid/tid and
    non-negative ts/dur, with ts non-decreasing across the file (the
    writer sorts spans by start time);
  - the staged-session span taxonomy is present: one span per session
    stage plus the ID-router phase spans and the Phase II solver span.

METRICS.json (optional) is a MetricsSnapshot export (`--metrics-out`).
Checks the shape ({"metrics":{name:{kind,value}}}) and pins the stable
key set: every session.*/router.*/refine.* adapter name plus the five
resource.* sampler gauges. Adding a stats field without teaching the
adapter already fails the build (sizeof static_asserts in
src/obs/metrics.cpp); this check is the reverse direction — renaming or
dropping an exported key breaks external consumers, so it fails here.

Exit status 0 iff every check passes; failures list what was missing.
"""

import json
import sys

# One span per staged-session stage, the ID-router's internal phases,
# and the Phase II batch solver. maze.net / store.* / spec-round spans
# are workload-dependent (reroutes, attached store, threads>1) and are
# deliberately not required.
REQUIRED_SPANS = [
    "session.route",
    "session.budget",
    "session.solve_regions",
    "session.refine",
    "router.build",
    "router.deletion",
    "router.collect",
    "sino.solve",
    "refine.pass1",
]

REQUIRED_METRICS = [
    # session.* — StageCounters (23)
    "session.route_requests", "session.route_executed",
    "session.route_loaded", "session.budget_requests",
    "session.budget_executed", "session.budget_loaded",
    "session.solve_requests", "session.solve_executed",
    "session.solve_loaded", "session.refine_requests",
    "session.refine_executed", "session.refine_loaded",
    "session.route_spec_attempted", "session.route_spec_committed",
    "session.route_spec_replayed", "session.refine_spec_attempted",
    "session.refine_spec_committed", "session.refine_spec_replayed",
    "session.delta_applies", "session.delta_nets_rerouted",
    "session.delta_nets_reused", "session.delta_regions_solved",
    "session.delta_regions_reused",
    # router.* — RoutingStats (10)
    "router.edges_initial", "router.edges_deleted", "router.edges_locked",
    "router.reinserts", "router.prerouted_nets", "router.rsmt_fallback_nets",
    "router.spec_attempted", "router.spec_committed", "router.spec_replayed",
    "router.runtime_s",
    # refine.* — RefineStats (11)
    "refine.pass1_nets_fixed", "refine.pass1_resolves",
    "refine.pass1_gave_up", "refine.pass2_shields_removed",
    "refine.pass2_accepted", "refine.pass2_rejected", "refine.batch_sweeps",
    "refine.batch_regions_resolved", "refine.spec_attempted",
    "refine.spec_committed", "refine.spec_replayed",
    # resource.* — ResourceSampler gauges (5)
    "resource.samples", "resource.rss_peak_kb", "resource.rss_last_kb",
    "resource.store_peak_bytes", "resource.pool_peak_threads",
]

# store.* keys appear only when an artifact store is attached to the
# session; when any of them is present, all of them must be.
STORE_METRICS = [
    "store.hits", "store.misses", "store.stores", "store.evictions",
    "store.rejected", "store.put_failures", "store.lock_waits",
    "store.bytes_written", "store.bytes_read",
]


def fail(msg: str) -> None:
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if not isinstance(data, dict):
        fail(f"{path}: top level is not a JSON object")
    return data


def check_trace(path: str) -> None:
    data = load(path)
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents")

    spans = [e for e in events if e.get("ph") == "X"]
    meta = [e for e in events if e.get("ph") == "M"]
    if not meta:
        fail(f"{path}: no 'M' metadata events (process/thread names)")
    if not spans:
        fail(f"{path}: no 'X' complete-span events")

    last_ts = None
    for i, e in enumerate(spans):
        for key in ("name", "cat", "pid", "tid", "ts", "dur"):
            if key not in e:
                fail(f"{path}: span #{i} is missing '{key}': {e}")
        if e["ts"] < 0 or e["dur"] < 0:
            fail(f"{path}: span #{i} has negative ts/dur: {e}")
        if last_ts is not None and e["ts"] < last_ts:
            fail(f"{path}: span #{i} breaks the sorted-by-start order")
        last_ts = e["ts"]

    names = {e["name"] for e in spans}
    missing = [n for n in REQUIRED_SPANS if n not in names]
    if missing:
        fail(f"{path}: required spans absent: {', '.join(missing)}")
    print(
        f"check_trace: {path}: {len(spans)} spans across "
        f"{len({e['tid'] for e in spans})} thread(s), "
        f"{len(names)} distinct names — OK"
    )


def check_metrics(path: str) -> None:
    data = load(path)
    metrics = data.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        fail(f"{path}: missing or empty 'metrics' object")

    for name, entry in metrics.items():
        if not isinstance(entry, dict):
            fail(f"{path}: '{name}' is not an object")
        if entry.get("kind") not in ("counter", "gauge"):
            fail(f"{path}: '{name}' has bad kind: {entry.get('kind')!r}")
        if not isinstance(entry.get("value"), (int, float)):
            fail(f"{path}: '{name}' has non-numeric value")

    missing = [n for n in REQUIRED_METRICS if n not in metrics]
    if missing:
        fail(f"{path}: required metrics absent: {', '.join(missing)}")
    if any(n in metrics for n in STORE_METRICS):
        missing = [n for n in STORE_METRICS if n not in metrics]
        if missing:
            fail(f"{path}: partial store.* key set; absent: "
                 f"{', '.join(missing)}")
    print(f"check_trace: {path}: {len(metrics)} metrics — OK")


def main(argv: list[str]) -> None:
    if len(argv) < 2 or len(argv) > 3:
        fail("usage: check_trace.py TRACE.json [METRICS.json]")
    check_trace(argv[1])
    if len(argv) == 3:
        check_metrics(argv[2])


if __name__ == "__main__":
    main(sys.argv)
