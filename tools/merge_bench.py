#!/usr/bin/env python3
"""Merge google-benchmark JSON files into one perf record.

Usage: merge_bench.py [--suffix SUF] BASE.json EXTRA.json [EXTRA.json ...]

Appends each EXTRA file's `benchmarks` entries to BASE (in place),
re-indexing `family_index` so it stays unique across the merged file
(consumers group by it).

`--suffix SUF` appends SUF to every EXTRA entry's `name`/`run_name`,
for A/B runs of the *same* benchmark under a different build
configuration (e.g. `--suffix /obs_off` for the tracing-overhead A/B —
see docs/OBSERVABILITY.md): without it the merged file would hold two
indistinguishable entries under one name.

Provenance guard: every input's `context` block must come from an
optimized build of the code under test. The check keys on
`app_build_type` (stamped by bench/build_type_context.h from the rlcr
build's own NDEBUG state) and falls back to google-benchmark's
`library_build_type` when the stamp is absent (pre-stamp files, foreign
generators). A debug entry is not a perf data point, and merging one
silently poisons the committed trajectory; the merge fails instead.
See bench/README.md ("Build-type provenance").
"""

import json
import sys


def fail(msg: str) -> None:
    print(f"merge_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def load_checked(path: str) -> dict:
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    ctx = data.get("context", {})
    build = ctx.get("app_build_type") or ctx.get("library_build_type", "")
    if build != "release":
        fail(
            f"{path}: build-type provenance is '{build}', not 'release' "
            "— rebuild with CMAKE_BUILD_TYPE=Release; debug timings must "
            "never enter the perf record"
        )
    return data


def main(argv: list[str]) -> None:
    args = argv[1:]
    suffix = ""
    if args and args[0] == "--suffix":
        if len(args) < 2:
            fail("--suffix requires a value")
        suffix = args[1]
        args = args[2:]
    if len(args) < 2:
        fail(
            "usage: merge_bench.py [--suffix SUF] BASE.json EXTRA.json "
            "[EXTRA.json ...]"
        )
    base_path, extra_paths = args[0], args[1:]
    base = load_checked(base_path)
    for path in extra_paths:
        extra = load_checked(path)
        offset = 1 + max(
            (b.get("family_index", 0) for b in base["benchmarks"]), default=-1
        )
        for b in extra["benchmarks"]:
            if "family_index" in b:
                b["family_index"] += offset
            for key in ("name", "run_name"):
                if suffix and key in b:
                    b[key] += suffix
        base["benchmarks"].extend(extra["benchmarks"])
    with open(base_path, "w") as f:
        json.dump(base, f, indent=1)
    print(
        f"merged {len(extra_paths)} file(s) into {base_path} "
        f"({len(base['benchmarks'])} entries)"
    )


if __name__ == "__main__":
    main(sys.argv)
